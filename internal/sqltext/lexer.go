package sqltext

import (
	"fmt"
	"strings"
)

// Lexer scans SQL text into tokens. Create one with New and call Next until
// it returns a token of KindEOF. Lexing errors are returned from Next; the
// lexer is not recoverable after an error.
type Lexer struct {
	src string
	pos int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Error describes a lexical error with its byte offset.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql lex error at offset %d: %s", e.Pos, e.Msg) }

// Tokenize scans all of src and returns the full token stream, excluding the
// trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == KindEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func isSpace(b byte) bool  { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }
func isDigit(b byte) bool  { return b >= '0' && b <= '9' }
func isLetter(b byte) bool { return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') }

// Next returns the next token in the stream.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return Token{Kind: KindEOF, Pos: start, End: start}, nil
	}
	b := lx.src[lx.pos]
	switch {
	case isLetter(b):
		return lx.word(), nil
	case isDigit(b):
		return lx.number()
	case b == '\'':
		return lx.stringLit()
	case b == '"' || b == '`':
		return lx.quotedIdent(b)
	}
	// Punctuation and operators.
	one := func(k Kind) (Token, error) {
		lx.pos++
		return Token{Kind: k, Text: lx.src[start:lx.pos], Pos: start, End: lx.pos}, nil
	}
	two := func(k Kind) (Token, error) {
		lx.pos += 2
		return Token{Kind: k, Text: lx.src[start:lx.pos], Pos: start, End: lx.pos}, nil
	}
	peek := byte(0)
	if lx.pos+1 < len(lx.src) {
		peek = lx.src[lx.pos+1]
	}
	switch b {
	case ',':
		return one(KindComma)
	case '.':
		return one(KindDot)
	case '(':
		return one(KindLParen)
	case ')':
		return one(KindRParen)
	case '*':
		return one(KindStar)
	case ';':
		return one(KindSemicolon)
	case '+':
		return one(KindPlus)
	case '-':
		return one(KindMinus)
	case '/':
		return one(KindSlash)
	case '%':
		return one(KindPercent)
	case '=':
		return one(KindEq)
	case '!':
		if peek == '=' {
			return two(KindNeq)
		}
		return Token{}, &Error{Pos: start, Msg: "unexpected '!'"}
	case '<':
		if peek == '=' {
			return two(KindLte)
		}
		if peek == '>' {
			return two(KindNeq)
		}
		return one(KindLt)
	case '>':
		if peek == '=' {
			return two(KindGte)
		}
		return one(KindGt)
	}
	return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", string(b))}
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		b := lx.src[lx.pos]
		switch {
		case isSpace(b):
			lx.pos++
		case b == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			// Line comment: skip to end of line.
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			return
		}
	}
}

func (lx *Lexer) word() Token {
	start := lx.pos
	for lx.pos < len(lx.src) && (isLetter(lx.src[lx.pos]) || isDigit(lx.src[lx.pos])) {
		lx.pos++
	}
	text := lx.src[start:lx.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return Token{Kind: KindKeyword, Text: upper, Pos: start, End: lx.pos}
	}
	return Token{Kind: KindIdent, Text: text, Pos: start, End: lx.pos}
}

func (lx *Lexer) number() (Token, error) {
	start := lx.pos
	seenDot := false
	for lx.pos < len(lx.src) {
		b := lx.src[lx.pos]
		if isDigit(b) {
			lx.pos++
			continue
		}
		if b == '.' && !seenDot && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]) {
			seenDot = true
			lx.pos++
			continue
		}
		break
	}
	if lx.pos < len(lx.src) && isLetter(lx.src[lx.pos]) {
		return Token{}, &Error{Pos: lx.pos, Msg: "malformed number"}
	}
	return Token{Kind: KindNumber, Text: lx.src[start:lx.pos], Pos: start, End: lx.pos}, nil
}

// stringLit scans a single-quoted string. Doubling the quote escapes it, per
// standard SQL ('it”s').
func (lx *Lexer) stringLit() (Token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		b := lx.src[lx.pos]
		if b == '\'' {
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return Token{Kind: KindString, Text: sb.String(), Pos: start, End: lx.pos}, nil
		}
		sb.WriteByte(b)
		lx.pos++
	}
	return Token{}, &Error{Pos: start, Msg: "unterminated string literal"}
}

// quotedIdent scans a double-quoted or backtick-quoted identifier.
func (lx *Lexer) quotedIdent(quote byte) (Token, error) {
	start := lx.pos
	lx.pos++
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		b := lx.src[lx.pos]
		if b == quote {
			lx.pos++
			return Token{Kind: KindIdent, Text: sb.String(), Pos: start, End: lx.pos}, nil
		}
		sb.WriteByte(b)
		lx.pos++
	}
	return Token{}, &Error{Pos: start, Msg: "unterminated quoted identifier"}
}
