// Package prompt builds and parses the prompts of the FISQL pipeline: the
// zero-/few-shot NL2SQL prompt (paper Figure 1), the feedback-regeneration
// prompt (Figure 6) with optional routed repair demonstrations (Figure 5),
// the feedback-type routing prompt, and the query-rewrite prompt.
//
// The same package owns parsing because the simulated LLM must understand
// exactly the prompts the pipeline produces — like a real API, it sees only
// text, and this package is the single source of truth for the layout.
package prompt

import (
	"fmt"
	"strings"
	"sync"

	"fisql/internal/dataset"
	"fisql/internal/feedback"
	"fisql/internal/schema"
)

// Section markers. Builders emit them; the parser keys on them.
const (
	markSchema      = "Schema:"
	markDemos       = "Here are example questions and their SQL queries:"
	markRepairDemos = "Here are examples of how to perform"
	markQuestion    = "Question:"
	markPrevQuery   = "Query:"
	markFeedback    = "The SQL query you have generated has received the following feedback:"
	markHighlight   = "The user highlighted this segment of the query:"
	markTask        = "Here is the question you need to answer:"
	markRewriteTail = "Taking into account the feedback, please rewrite the SQL query."
	markRouting     = "Classify the user feedback into one of the operation types: Add, Remove, Edit."
	markRewriteTask = "Rewrite the user question so that it also reflects the feedback."
	markFinal       = "SQL:"
)

// Instructions is the generic task instruction block (Figure 1's skeleton).
const Instructions = "You are an expert text-to-SQL assistant. " +
	"Translate the user question into a single SQL query over the schema below. " +
	"Respond with the SQL query only."

// Demo is a (question, SQL) in-context demonstration.
type Demo struct {
	Question string
	SQL      string
}

// schemaTextCache memoizes Schema.PromptText per schema. Schemas are
// immutable after corpus construction (see the concurrency contract in
// DESIGN.md) and keyed by pointer identity like the engine's plan cache,
// so the serialization — the largest block of every prompt — is built once
// per schema instead of once per request. The cache is unbounded but holds
// one entry per database of the loaded corpora.
var schemaTextCache sync.Map // *schema.Schema -> string

func schemaText(s *schema.Schema) string {
	if v, ok := schemaTextCache.Load(s); ok {
		return v.(string)
	}
	text := s.PromptText()
	schemaTextCache.Store(s, text)
	return text
}

// NL2SQL builds the generation prompt: instructions, full schema, optional
// retrieved demonstrations, and the question. With no demos this is the
// zero-shot prompt of Figure 1.
func NL2SQL(s *schema.Schema, demos []Demo, question string) string {
	var sb strings.Builder
	// Pre-size to the known components so the hot serving path builds the
	// prompt in one allocation instead of log(n) growth copies. The slack
	// constant covers markers, separators and per-demo framing.
	st := schemaText(s)
	n := len(Instructions) + len(st) + len(question) + 128
	for _, d := range demos {
		n += len(d.Question) + len(d.SQL) + 16
	}
	sb.Grow(n)
	sb.WriteString(Instructions)
	sb.WriteString("\n\n")
	sb.WriteString(markSchema)
	sb.WriteString("\n")
	sb.WriteString(st)
	if len(demos) > 0 {
		sb.WriteString("\n")
		sb.WriteString(markDemos)
		sb.WriteString("\n")
		for _, d := range demos {
			fmt.Fprintf(&sb, "Q: %s\nSQL: %s\n", d.Question, d.SQL)
		}
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%s %s\n%s", markQuestion, question, markFinal)
	return sb.String()
}

// Repair builds the feedback-incorporation prompt of Figure 6: the NL2SQL
// prompt plus the previous query, the user feedback, optionally the routed
// repair demonstrations (Figure 5) and a highlight.
func Repair(s *schema.Schema, demos []Demo, routed []feedback.RepairDemo, routedOp *dataset.Op,
	question, prevSQL, fbText string, hl *feedback.Highlight) string {
	var sb strings.Builder
	sb.WriteString(Instructions)
	sb.WriteString("\n\n")
	sb.WriteString(markSchema)
	sb.WriteString("\n")
	sb.WriteString(schemaText(s))
	if len(demos) > 0 {
		sb.WriteString("\n")
		sb.WriteString(markDemos)
		sb.WriteString("\n")
		for _, d := range demos {
			fmt.Fprintf(&sb, "Q: %s\nSQL: %s\n", d.Question, d.SQL)
		}
	}
	if routedOp != nil {
		fmt.Fprintf(&sb, "\n%s %s updates to SQL queries based on feedback:\n", markRepairDemos, routedOp.String())
		for _, d := range routed {
			fmt.Fprintf(&sb, "Question: %s\nQuery: %s\nFeedback: %s\nUpdated query: %s\n",
				d.Question, d.Original, d.Feedback, d.Updated)
		}
	}
	sb.WriteString("\n")
	sb.WriteString(markTask)
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%s %s\n", markQuestion, question)
	fmt.Fprintf(&sb, "%s %s\n", markPrevQuery, prevSQL)
	fmt.Fprintf(&sb, "%s\n%s\n", markFeedback, fbText)
	if hl != nil {
		fmt.Fprintf(&sb, "%s\n%s\n", markHighlight, hl.Text)
	}
	fmt.Fprintf(&sb, "%s\n%s", markRewriteTail, markPrevQuery)
	return sb.String()
}

// Routing builds the feedback-type identification prompt. Demonstrations
// are emitted in fixed operation order so the prompt bytes are
// deterministic.
func Routing(fbText string) string {
	var sb strings.Builder
	sb.WriteString(markRouting)
	sb.WriteString("\n\n")
	examples := feedback.TaxonomyExamples()
	for _, op := range []dataset.Op{dataset.OpAdd, dataset.OpRemove, dataset.OpEdit} {
		fmt.Fprintf(&sb, "Feedback: %s\nType: %s\n", examples[op], op)
	}
	fmt.Fprintf(&sb, "\nFeedback: %s\nType:", fbText)
	return sb.String()
}

// Rewrite builds the query-rewrite baseline prompt: paraphrase question +
// feedback into a new standalone question.
func Rewrite(question, fbText string) string {
	var sb strings.Builder
	sb.WriteString(markRewriteTask)
	sb.WriteString("\n\n")
	fmt.Fprintf(&sb, "%s %s\n", markQuestion, question)
	fmt.Fprintf(&sb, "Feedback: %s\n", fbText)
	sb.WriteString("New question:")
	return sb.String()
}

// ----------------------------------------------------------------------------
// Parsing (used by the simulated model)

// Kind discriminates parsed prompt types.
type Kind int

// Prompt kinds.
const (
	KindNL2SQL Kind = iota
	KindRepair
	KindRouting
	KindRewrite
)

// Parsed is the structured view of a prompt.
type Parsed struct {
	Kind      Kind
	Question  string
	PrevSQL   string
	Feedback  string
	Highlight *feedback.Highlight
	Demos     []Demo
	// RoutedOp is the operation type of the repair demonstrations, if the
	// prompt included a routed demonstration section.
	RoutedOp *dataset.Op
	// SchemaName is the database name announced in the schema block.
	SchemaName string
}

// Parse decodes a prompt built by this package.
func Parse(text string) (*Parsed, error) {
	switch {
	case strings.HasPrefix(text, markRouting):
		// The feedback to classify is the last "Feedback:" line.
		lines := strings.Split(text, "\n")
		for i := len(lines) - 1; i >= 0; i-- {
			if f, ok := strings.CutPrefix(lines[i], "Feedback: "); ok {
				return &Parsed{Kind: KindRouting, Feedback: strings.TrimSpace(f)}, nil
			}
		}
		return nil, fmt.Errorf("routing prompt without feedback line")
	case strings.HasPrefix(text, markRewriteTask):
		p := &Parsed{Kind: KindRewrite}
		for _, line := range strings.Split(text, "\n") {
			if q, ok := strings.CutPrefix(line, markQuestion+" "); ok {
				p.Question = strings.TrimSpace(q)
			}
			if f, ok := strings.CutPrefix(line, "Feedback: "); ok {
				p.Feedback = strings.TrimSpace(f)
			}
		}
		if p.Question == "" {
			return nil, fmt.Errorf("rewrite prompt without question")
		}
		return p, nil
	}

	p := &Parsed{Kind: KindNL2SQL}
	lines := strings.Split(text, "\n")
	inDemos, inRouted, inHighlight, inFeedback := false, false, false, false
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		switch {
		case line == markDemos:
			inDemos, inRouted = true, false
		case strings.HasPrefix(line, markRepairDemos):
			inDemos, inRouted = false, true
			for _, opName := range []string{"Add", "Remove", "Edit"} {
				if strings.Contains(line, " "+opName+" ") {
					if op, ok := dataset.ParseOp(opName); ok {
						p.RoutedOp = &op
					}
				}
			}
		case line == markTask:
			inDemos, inRouted = false, false
		case line == markFeedback:
			p.Kind = KindRepair
			inFeedback = true
			inDemos, inRouted, inHighlight = false, false, false
		case line == markHighlight:
			inHighlight = true
			inFeedback = false
		case line == markRewriteTail:
			inHighlight, inFeedback = false, false
		case strings.HasPrefix(line, "Database: "):
			if p.SchemaName == "" {
				p.SchemaName = strings.TrimSpace(strings.TrimPrefix(line, "Database: "))
			}
		case strings.HasPrefix(line, markQuestion+" "):
			q := strings.TrimSpace(strings.TrimPrefix(line, markQuestion))
			if inRouted {
				continue // demonstration questions are not the task question
			}
			p.Question = q
		case strings.HasPrefix(line, markPrevQuery+" "):
			if inRouted {
				continue
			}
			p.PrevSQL = strings.TrimSpace(strings.TrimPrefix(line, markPrevQuery))
		case inDemos && strings.HasPrefix(line, "Q: "):
			d := Demo{Question: strings.TrimPrefix(line, "Q: ")}
			if i+1 < len(lines) && strings.HasPrefix(lines[i+1], "SQL: ") {
				d.SQL = strings.TrimPrefix(lines[i+1], "SQL: ")
				i++
			}
			p.Demos = append(p.Demos, d)
		case inFeedback && strings.TrimSpace(line) != "":
			if p.Feedback != "" {
				p.Feedback += " "
			}
			p.Feedback += strings.TrimSpace(line)
		case inHighlight && strings.TrimSpace(line) != "":
			p.Highlight = &feedback.Highlight{Text: strings.TrimSpace(line)}
		}
	}
	if p.Question == "" {
		return nil, fmt.Errorf("prompt without question")
	}
	return p, nil
}
