package prompt

import (
	"strings"
	"testing"

	"fisql/internal/dataset"
	"fisql/internal/feedback"
	"fisql/internal/schema"
)

func testSchema() *schema.Schema {
	return &schema.Schema{
		Name: "concert_singer",
		Tables: []schema.Table{{
			Name: "singer",
			Columns: []schema.Column{
				{Name: "singer_id", Type: "INT"},
				{Name: "name", Type: "TEXT"},
				{Name: "age", Type: "INT"},
			},
		}},
	}
}

func TestNL2SQLZeroShotSkeleton(t *testing.T) {
	// The zero-shot prompt follows Figure 1: instructions, full schema,
	// question — and no demonstrations section.
	p := NL2SQL(testSchema(), nil, "How many singers are there?")
	for _, want := range []string{
		Instructions,
		"Database: concert_singer",
		"Table singer(singer_id INT, name TEXT, age INT)",
		"Question: How many singers are there?",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
	if strings.Contains(p, "example questions") {
		t.Error("zero-shot prompt must not carry demonstrations")
	}
	if !strings.HasSuffix(p, "SQL:") {
		t.Errorf("prompt should end with the SQL cue, ends %q", p[len(p)-20:])
	}
}

func TestNL2SQLRoundtrip(t *testing.T) {
	demos := []Demo{
		{Question: "count all", SQL: "SELECT COUNT(*) FROM singer"},
		{Question: "list names", SQL: "SELECT name FROM singer"},
	}
	p := NL2SQL(testSchema(), demos, "How many singers are there?")
	parsed, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Kind != KindNL2SQL {
		t.Errorf("kind: %v", parsed.Kind)
	}
	if parsed.Question != "How many singers are there?" {
		t.Errorf("question: %q", parsed.Question)
	}
	if parsed.SchemaName != "concert_singer" {
		t.Errorf("schema name: %q", parsed.SchemaName)
	}
	if len(parsed.Demos) != 2 || parsed.Demos[1].SQL != "SELECT name FROM singer" {
		t.Errorf("demos: %+v", parsed.Demos)
	}
	if parsed.RoutedOp != nil || parsed.Feedback != "" || parsed.PrevSQL != "" {
		t.Error("NL2SQL prompt parsed with repair fields set")
	}
}

func TestRepairRoundtrip(t *testing.T) {
	op := dataset.OpEdit
	hl := &feedback.Highlight{Text: "age > 20"}
	p := Repair(testSchema(),
		[]Demo{{Question: "d", SQL: "SELECT 1"}},
		feedback.Demos(op), &op,
		"How many singers are there?",
		"SELECT COUNT(*) FROM singer WHERE age > 20",
		"we are in 2024", hl)
	parsed, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Kind != KindRepair {
		t.Fatalf("kind: %v", parsed.Kind)
	}
	if parsed.Question != "How many singers are there?" {
		t.Errorf("question: %q (routed demo questions must not win)", parsed.Question)
	}
	if parsed.PrevSQL != "SELECT COUNT(*) FROM singer WHERE age > 20" {
		t.Errorf("prev sql: %q", parsed.PrevSQL)
	}
	if parsed.Feedback != "we are in 2024" {
		t.Errorf("feedback: %q", parsed.Feedback)
	}
	if parsed.RoutedOp == nil || *parsed.RoutedOp != dataset.OpEdit {
		t.Errorf("routed op: %v", parsed.RoutedOp)
	}
	if parsed.Highlight == nil || parsed.Highlight.Text != "age > 20" {
		t.Errorf("highlight: %+v", parsed.Highlight)
	}
}

func TestRepairWithoutRouting(t *testing.T) {
	p := Repair(testSchema(), nil, nil, nil, "q?", "SELECT 1", "do not give descriptions", nil)
	parsed, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.RoutedOp != nil {
		t.Error("un-routed prompt parsed a routed op")
	}
	if parsed.Kind != KindRepair || parsed.Feedback != "do not give descriptions" {
		t.Errorf("parsed: %+v", parsed)
	}
}

func TestRoutingRoundtrip(t *testing.T) {
	p := Routing("order the names in ascending order.")
	parsed, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Kind != KindRouting {
		t.Fatalf("kind: %v", parsed.Kind)
	}
	if parsed.Feedback != "order the names in ascending order." {
		t.Errorf("feedback: %q (must be the LAST feedback line, not a demo)", parsed.Feedback)
	}
}

func TestRewriteRoundtrip(t *testing.T) {
	p := Rewrite("How many singers?", "we are in 2024")
	parsed, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Kind != KindRewrite || parsed.Question != "How many singers?" || parsed.Feedback != "we are in 2024" {
		t.Errorf("parsed: %+v", parsed)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("complete gibberish with no markers"); err == nil {
		t.Error("expected error for unmarked prompt")
	}
}

func TestRepairContainsFigure6Language(t *testing.T) {
	p := Repair(testSchema(), nil, nil, nil, "q?", "SELECT 1", "fb", nil)
	for _, want := range []string{
		"The SQL query you have generated has received the following feedback:",
		"Taking into account the feedback, please rewrite the SQL query.",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("Figure 6 phrasing missing: %q", want)
		}
	}
}

func TestMultilineFeedbackJoined(t *testing.T) {
	p := Repair(testSchema(), nil, nil, nil, "q?", "SELECT 1", "line one\nline two", nil)
	parsed, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Feedback != "line one line two" {
		t.Errorf("feedback: %q", parsed.Feedback)
	}
}
