package dataset

import (
	"fmt"
	"strings"

	"fisql/internal/engine"
	"fisql/internal/schema"
	"fisql/internal/sqlast"
)

// Additional template families: IN-lists, LIKE prefixes, join-with-filter
// and NOT-IN anti-joins. They broaden the corpus's SQL surface (the SPIDER
// template diversity the paper evaluates on) and supply extra trappable and
// clean candidates.

// InList: "Show the {proj} of {table} whose {col} is {v1} or {v2}."
func (g *Gen) InList(t *schema.Table, proj, filter schema.Column) *Candidate {
	tp := t.Phrase()
	pp, fp := phraseOf(proj.NL, proj.Name), phraseOf(filter.NL, filter.Name)
	v1, v2, ok := g.sampleDistinct(t.Name, filter.Name)
	if !ok {
		return nil
	}
	_, v3, ok := g.sampleDistinctFrom(t.Name, filter.Name, v1)
	if !ok {
		return nil
	}
	if eq, _ := engine.Equal(v2, v3); eq {
		return nil
	}
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: bareCol(proj.Name)}},
		From:  from(t.Name),
		Where: &sqlast.InExpr{X: bareCol(filter.Name), List: []sqlast.Expr{litFor(v1), litFor(v2)}},
	}
	phrase := fmt.Sprintf("the %s of the %s whose %s is %s or %s", pp, tp, fp, quoteVal(v1), quoteVal(v2))
	return &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("Show the %s of the %s whose %s is %s or %s.", pp, tp, fp, quoteVal(v1), quoteVal(v2)),
		Paraphrase: fmt.Sprintf("Find the %s of the %s whose %s is %s or %s.", pp, tp, fp, quoteVal(v1), quoteVal(v2)),
		Gold:       gold,
		Perturbs: []Perturb{{
			// The naive reading swaps the second list member for a value
			// the user never asked about.
			Trap: Trap{
				Kind: WrongLiteral, Phrase: phrase, Clause: sqlast.ClauseWhere,
				Old: v3.String(), New: v2.String(), Column: filter.Name,
			},
			Apply: func(s *sqlast.SelectStmt) {
				s.Where.(*sqlast.InExpr).List[1] = litFor(v3)
			},
		}},
	}
}

// LikePrefix: "Show the {proj} of {table} whose {col} starts with '{P}'."
func (g *Gen) LikePrefix(t *schema.Table, proj, filter schema.Column) *Candidate {
	tp := t.Phrase()
	pp, fp := phraseOf(proj.NL, proj.Name), phraseOf(filter.NL, filter.Name)
	_, v, ok := g.SampleValue(t.Name, filter.Name)
	if !ok || v.T != engine.TypeText || v.S == "" {
		return nil
	}
	prefix := strings.ToUpper(v.S[:1])
	wrongPrefix := "Z"
	if prefix == "Z" {
		wrongPrefix = "Q"
	}
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: bareCol(proj.Name)}},
		From:  from(t.Name),
		Where: &sqlast.LikeExpr{X: bareCol(filter.Name), Pattern: sqlast.Str(prefix + "%")},
	}
	phrase := fmt.Sprintf("the %s of the %s whose %s starts with '%s'", pp, tp, fp, prefix)
	return &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("Show the %s of the %s whose %s starts with '%s'.", pp, tp, fp, prefix),
		Paraphrase: fmt.Sprintf("Give the %s of the %s whose %s starts with '%s'.", pp, tp, fp, prefix),
		Gold:       gold,
		Perturbs: []Perturb{{
			Trap: Trap{
				Kind: WrongLiteral, Phrase: phrase, Clause: sqlast.ClauseWhere,
				Old: wrongPrefix + "%", New: prefix + "%", Column: filter.Name,
			},
			Apply: func(s *sqlast.SelectStmt) {
				s.Where.(*sqlast.LikeExpr).Pattern = sqlast.Str(wrongPrefix + "%")
			},
		}},
	}
}

// JoinFilter: "Show the {childCol} of the {child} whose {parent} {parentCol}
// is {v}." — a join plus a filter on the joined table.
func (g *Gen) JoinFilter(child *schema.Table, childCol schema.Column, parent *schema.Table, filterCol schema.Column, fk schema.ForeignKey) *Candidate {
	cp := phraseOf(childCol.NL, childCol.Name)
	fp := phraseOf(filterCol.NL, filterCol.Name)
	ctp, ptp := child.Phrase(), parent.Phrase()
	v1, v2, ok := g.sampleDistinct(parent.Name, filterCol.Name)
	if !ok {
		return nil
	}
	where := func(v engine.Value) sqlast.Expr {
		return &sqlast.Binary{Op: sqlast.OpEq, L: colRef(parent.Name, filterCol.Name), R: litFor(v)}
	}
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: colRef(child.Name, childCol.Name)}},
		From: &sqlast.FromClause{
			First: sqlast.TableSource{Name: child.Name},
			Joins: []sqlast.Join{{
				Type:   sqlast.JoinInner,
				Source: sqlast.TableSource{Name: parent.Name},
				On: &sqlast.Binary{Op: sqlast.OpEq,
					L: colRef(child.Name, fk.Column),
					R: colRef(parent.Name, fk.RefColumn)},
			}},
		},
		Where: where(v1),
	}
	phrase := fmt.Sprintf("the %s of the %s whose %s %s is %s", cp, ctp, ptp, fp, quoteVal(v1))
	return &Candidate{
		DB: g.Schema.Name,
		Question: fmt.Sprintf("Show the %s of the %s whose %s %s is %s.",
			cp, ctp, ptp, fp, quoteVal(v1)),
		Paraphrase: fmt.Sprintf("List the %s of the %s whose %s %s is %s.",
			cp, ctp, ptp, fp, quoteVal(v1)),
		Gold: gold,
		Perturbs: []Perturb{{
			Trap: Trap{
				Kind: WrongLiteral, Phrase: phrase, Clause: sqlast.ClauseWhere,
				Old: v2.String(), New: v1.String(), Column: filterCol.Name, Table: parent.Name,
			},
			Apply: func(s *sqlast.SelectStmt) { s.Where = where(v2) },
		}},
	}
}

// NotIn: "List the {parentCol} of {parent} that have no {child}." — an
// anti-join; generated untrapped (the clean-example pool benefits from
// harder SQL shapes too).
func (g *Gen) NotIn(parent *schema.Table, parentCol schema.Column, child *schema.Table, fk schema.ForeignKey) *Candidate {
	pp := phraseOf(parentCol.NL, parentCol.Name)
	ptp, ctp := parent.Phrase(), child.Phrase()
	sub := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: bareCol(fk.Column)}},
		From:  from(child.Name),
	}
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: bareCol(parentCol.Name)}},
		From:  from(parent.Name),
		Where: &sqlast.InExpr{X: bareCol(fk.RefColumn), Not: true, Sub: sub},
	}
	return &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("List the %s of the %s that have no %s.", pp, ptp, ctp),
		Paraphrase: fmt.Sprintf("Which %s have no %s? Give their %s.", ptp, ctp, pp),
		Gold:       gold,
	}
}
