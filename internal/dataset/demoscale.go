package dataset

import (
	"fmt"
	"strings"
)

// scaleWords lends scaled demonstration variants lexical diversity. The
// pool is intentionally larger than a few entries: variants must spread in
// vector space, not stack into exact-tie clusters (see ScaleDemos).
var scaleWords = []string{
	"alternate", "rephrased", "restated", "another", "similar",
	"equivalent", "reworded", "paraphrased", "casual", "formal",
	"short", "verbose", "spoken", "written", "terse", "loose",
	"plain", "polished", "rough", "quick", "careful", "direct",
	"indirect", "literal",
}

// ScaleDemos deterministically scales the demonstration pool to mult times
// its size (mult <= 1 returns the pool unchanged). Each variant keeps the
// original database and SQL but rephrases the question: one word is
// dropped and a distinct suffix is appended, so variants cluster around
// their base demonstration without collapsing onto it — the shape of a
// feedback-grown library, where users rephrase the same intent many ways.
//
// The per-variant lexical spread matters beyond realism: variants that
// differ only by same-weight suffix tokens would have identical norms and
// therefore produce exact score ties against any query, and a thousand-way
// tie group forces the HNSW beam search to expand the entire cluster
// before it can terminate (ties cannot be cut without losing the
// pool-order tie-break). Dropping a different base word per variant makes
// scores genuinely distinct, so scaled pools measure graph navigation, not
// tie-group flooding.
//
// The original demos come first, byte-identical, at any multiplier
// (mirroring the engine's row scaling in PR 7), and every entry is unique
// under the retrieval store's (db, question, sql) dedup key.
func ScaleDemos(demos []Demo, mult int) []Demo {
	if mult <= 1 || len(demos) == 0 {
		return demos
	}
	out := make([]Demo, 0, len(demos)*mult)
	out = append(out, demos...)
	for v := 1; v < mult; v++ {
		for i, d := range demos {
			h := uint32(v)*2654435761 + uint32(i)*40503
			words := strings.Fields(d.Question)
			if len(words) > 3 {
				drop := int(h>>8) % len(words)
				words = append(words[:drop:drop], words[drop+1:]...)
			}
			c := d
			c.Question = fmt.Sprintf("%s (%s %s wording %d)",
				strings.Join(words, " "),
				scaleWords[h%uint32(len(scaleWords))],
				scaleWords[(h/7)%uint32(len(scaleWords))],
				v)
			out = append(out, c)
		}
	}
	return out
}
