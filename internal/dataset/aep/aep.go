// Package aep builds the synthetic Experience-Platform benchmark: a
// marketing-analytics schema with closed-domain jargon ("audiences" are
// segments, segments are "activated to" destinations through an activation
// fact table) and question traffic whose vocabulary a generic lexicon
// resolves wrongly — the paper's closed-domain failure mode. The corpus is
// calibrated so zero-shot accuracy is 24% (Figure 2) and the Assistant
// fails on exactly 54 questions one-shot (§4.1), 53 of them annotatable.
package aep

import (
	"fmt"
	"math/rand"

	"fisql/internal/dataset"
	"fisql/internal/engine"
	"fisql/internal/schema"
)

// Seed is the default corpus seed.
const Seed = 20240601

func col(name, typ string, nl ...string) schema.Column {
	if len(nl) == 0 {
		nl = []string{name}
	}
	return schema.Column{Name: name, Type: typ, NL: nl}
}

func fk(c, refTable, refCol string) schema.ForeignKey {
	return schema.ForeignKey{Column: c, RefTable: refTable, RefColumn: refCol}
}

// Schema returns the Experience-Platform schema. Table names carry the
// warehouse-style hkg_ prefixes of the paper's Figure 4.
func Schema() *schema.Schema {
	return &schema.Schema{Name: "experience_platform", Tables: []schema.Table{
		{Name: "hkg_dim_segment", NL: []string{"audiences", "segments"}, PrimaryKey: []string{"segment_id"}, Columns: []schema.Column{
			col("segment_id", "INT"),
			col("segment_name", "TEXT", "segment name", "audience name"),
			col("segment_status", "TEXT", "segment status"),
			col("segment_type", "TEXT", "segment type"),
			col("createdTime", "DATE", "created time"),
			col("profile_count", "INT", "profile count"),
		}},
		{Name: "hkg_dim_destination", NL: []string{"destinations"}, PrimaryKey: []string{"destination_id"}, Columns: []schema.Column{
			col("destination_id", "INT"),
			col("destination_name", "TEXT", "destination name"),
			col("destination_type", "TEXT", "destination type"),
			col("createdTime", "DATE", "created time"),
			col("monthly_quota", "INT", "monthly quota"),
		}},
		{Name: "hkg_fact_activation", NL: []string{"activations"}, PrimaryKey: []string{"activation_id"},
			ForeignKeys: []schema.ForeignKey{
				fk("segment_id", "hkg_dim_segment", "segment_id"),
				fk("destination_id", "hkg_dim_destination", "destination_id"),
			},
			Columns: []schema.Column{
				col("activation_id", "INT"),
				col("segment_id", "INT"),
				col("destination_id", "INT"),
				col("activation_date", "DATE", "activation date"),
				col("delivered_count", "INT", "delivered count"),
			}},
		{Name: "hkg_dim_dataset", NL: []string{"datasets"}, PrimaryKey: []string{"dataset_id"}, Columns: []schema.Column{
			col("dataset_id", "INT"),
			col("dataset_name", "TEXT", "dataset name"),
			col("record_count", "INT", "record count"),
			col("createdTime", "DATE", "created time"),
			col("storage_gb", "REAL", "storage in gigabytes"),
			col("dataset_status", "TEXT", "dataset status"),
		}},
		{Name: "hkg_dim_journey", NL: []string{"journeys"}, PrimaryKey: []string{"journey_id"}, Columns: []schema.Column{
			col("journey_id", "INT"),
			col("journey_name", "TEXT", "journey name"),
			col("journey_status", "TEXT", "journey status"),
			col("createdTime", "DATE", "created time"),
			col("step_count", "INT", "step count"),
		}},
		{Name: "hkg_dim_campaign", NL: []string{"campaigns"}, PrimaryKey: []string{"campaign_id"},
			ForeignKeys: []schema.ForeignKey{fk("journey_id", "hkg_dim_journey", "journey_id")},
			Columns: []schema.Column{
				col("campaign_id", "INT"),
				col("journey_id", "INT"),
				col("campaign_name", "TEXT", "campaign name"),
				col("channel", "TEXT", "channel"),
				col("send_count", "INT", "send count"),
				col("createdTime", "DATE", "created time"),
			}},
		{Name: "hkg_fact_profile", NL: []string{"profiles"}, PrimaryKey: []string{"profile_id"}, Columns: []schema.Column{
			col("profile_id", "INT"),
			col("merge_policy", "TEXT", "merge policy"),
			col("profile_region", "TEXT", "region"),
			col("created_date", "DATE", "created date"),
			col("identity_count", "INT", "identity count"),
		}},
	}}
}

// Paper-calibrated quotas: 200 user questions; 152 zero-shot errors (24%
// zero-shot accuracy, Figure 2); RAG demonstrations recover 98 leaving 54
// one-shot Assistant failures; 53 annotated, with the Table 2/3 split.
func quotas() dataset.Quotas {
	return dataset.Quotas{
		Total:             200,
		Covered:           98,
		TwoTrap:           4,
		TwoTrapGood:       0,
		SingleGood:        36,
		GoodAmbiguous:     0,
		GoodRewrite:       19,
		GroundingHard:     1,
		Misaligned:        6,
		Vague:             6,
		Unannotated:       1,
		GenericDemosPerDB: 5,
	}
}

// Build constructs the Experience-Platform benchmark with the default seed.
func Build() (*dataset.Dataset, error) { return BuildSeed(Seed) }

// BuildRows constructs the default-seed benchmark with the database's tables
// grown to mult times their base row count. Scaling runs strictly after
// corpus assembly and only appends rows, so examples, demonstrations and the
// 1x data are byte-for-byte identical to Build; mult <= 1 IS Build.
func BuildRows(mult int) (*dataset.Dataset, error) { return buildSeedRows(Seed, mult) }

// BuildSeed constructs the benchmark with an explicit seed.
func BuildSeed(seed int64) (*dataset.Dataset, error) { return buildSeedRows(seed, 1) }

func buildSeedRows(seed int64, mult int) (*dataset.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New("experience_platform")
	s := Schema()
	g, err := dataset.NewGen(ds, s, rng)
	if err != nil {
		return nil, err
	}
	if err := g.Populate(50); err != nil {
		return nil, fmt.Errorf("populate: %w", err)
	}
	candidates := Candidates(g)
	// Pin the signature AEP failures as annotated, correctable errors
	// before dealing the rest: the closed-domain jargon questions, and the
	// paper's Figure 4 example ("How many audiences were created in
	// January?") so the documented walkthrough is stable across corpus
	// revisions.
	q := quotas()
	pinned := 0
	pin := func(c *dataset.Candidate, tag string) bool {
		e := g.Realize(c, c.Perturbs[:1])
		if e == nil {
			return false
		}
		e.ID = fmt.Sprintf("%s-%s-%d", ds.Name, tag, len(ds.Examples))
		e.Annotatable = true
		ds.AddExample(e)
		q.SingleGood--
		q.Total--
		pinned++
		return true
	}
	var rest []*dataset.Candidate
	for _, c := range candidates {
		if pinned < 4 {
			switch {
			case len(c.Perturbs) == 1 && c.Perturbs[0].Trap.Kind == dataset.WrongTable:
				if pin(c, "jargon") {
					continue
				}
			case c.Question == "How many audiences were created in January?":
				if pin(c, "figure4") {
					continue
				}
			}
		}
		rest = append(rest, c)
	}
	asm := &dataset.Assembler{DS: ds, Gens: map[string]*dataset.Gen{s.Name: g}, Rng: rng}
	if err := asm.Assemble(rest, q); err != nil {
		return nil, err
	}
	if mult > 1 {
		// Fresh stream: scaled rows are a pure function of (seed, mult).
		g.Rng = rand.New(rand.NewSource(seed + 1))
		if err := g.ScaleRows(mult); err != nil {
			return nil, fmt.Errorf("scale: %w", err)
		}
	}
	return ds, nil
}

// Candidates generates the AEP question candidates. The closed-domain
// flavour comes from the jargon table-pair questions ("audiences" resolving
// to the wrong table) and the heavy use of created-in-month questions with
// implicit years — the paper's Figure 4 trap.
func Candidates(g *dataset.Gen) []*dataset.Candidate {
	var out []*dataset.Candidate
	add := func(c *dataset.Candidate) {
		if c != nil {
			out = append(out, c)
		}
	}
	s := g.Schema
	// Jargon: "audiences" naive-resolves to the datasets table; "active
	// journeys" to campaigns. These are the WrongTable closed-domain traps.
	add(g.WrongTablePair(s.Table("hkg_dim_segment"), s.Table("hkg_dim_dataset"), "audiences in the org"))
	add(g.WrongTablePair(s.Table("hkg_dim_journey"), s.Table("hkg_dim_campaign"), "live journeys"))
	add(g.WrongTablePair(s.Table("hkg_fact_activation"), s.Table("hkg_dim_destination"), "segment activations"))

	for ti := range s.Tables {
		t := &s.Tables[ti]
		add(g.CountAll(t))

		textCols := textColumns(t)
		numCols := numColumns(t)
		dateCols := dateColumns(t)

		for _, c := range textCols {
			add(g.ListCol(t, c))
			add(g.ListDistinct(t, c))
			add(g.GroupCount(t, c))
			add(g.Having(t, c, 2, 5))
		}
		for _, proj := range textCols {
			for _, filter := range textCols {
				if proj.Name == filter.Name {
					continue
				}
				add(g.FilterEq(t, proj, filter))
			}
			for _, key := range numCols {
				add(g.Superlative(t, proj, key, true))
				add(g.Superlative(t, proj, key, false))
				add(g.OrderList(t, proj, key, false))
				add(g.OrderList(t, proj, key, true))
			}
		}
		for _, c := range numCols {
			add(g.CountFilterCmp(t, c))
			add(g.AggCol(t, c, "AVG"))
			add(g.AggCol(t, c, "MAX"))
			if engine.TypeFromSQL(c.Type) == engine.TypeInt {
				add(g.AggCol(t, c, "SUM"))
			}
		}
		if len(textCols) >= 3 {
			add(g.FilterTwo(t, textCols[0], textCols[1], textCols[2]))
		}
		if len(textCols) >= 2 {
			add(g.InList(t, textCols[0], textCols[1]))
			add(g.LikePrefix(t, textCols[1], textCols[0]))
		}
		// Every month of the implicit-year question (Figure 4): the gold
		// query assumes the current year 2024, the naive model writes 2023.
		for _, dc := range dateCols {
			for _, m := range dataset.Months() {
				add(g.CreatedIn(t, dc, m, 2024, 2023))
			}
		}
		for _, f := range t.ForeignKeys {
			parent := s.Table(f.RefTable)
			if parent == nil {
				continue
			}
			ct := textColumns(t)
			pt := textColumns(parent)
			for _, c1 := range capCols(ct, 1) {
				for _, c2 := range capCols(pt, 2) {
					add(g.JoinList(t, c1, parent, c2, f))
				}
				for _, pf := range capCols(pt, 1) {
					add(g.JoinFilter(t, c1, parent, pf, f))
				}
			}
			for _, pc := range capCols(pt, 1) {
				add(g.NotIn(parent, pc, t, f))
			}
			if len(ct) == 0 {
				for _, c1 := range capCols(numColumns(t), 1) {
					for _, c2 := range capCols(pt, 2) {
						add(g.JoinList(t, c1, parent, c2, f))
					}
				}
			}
		}
	}
	return out
}

func textColumns(t *schema.Table) []schema.Column {
	var out []schema.Column
	for _, c := range t.Columns {
		if c.Type == "TEXT" && !isKeyLike(t, c.Name) {
			out = append(out, c)
		}
	}
	return out
}

func numColumns(t *schema.Table) []schema.Column {
	var out []schema.Column
	for _, c := range t.Columns {
		typ := engine.TypeFromSQL(c.Type)
		if (typ == engine.TypeInt || typ == engine.TypeFloat) && !isKeyLike(t, c.Name) {
			out = append(out, c)
		}
	}
	return out
}

func dateColumns(t *schema.Table) []schema.Column {
	var out []schema.Column
	for _, c := range t.Columns {
		if c.Type == "DATE" {
			out = append(out, c)
		}
	}
	return out
}

func isKeyLike(t *schema.Table, name string) bool {
	for _, pk := range t.PrimaryKey {
		if pk == name {
			return true
		}
	}
	for _, f := range t.ForeignKeys {
		if f.Column == name {
			return true
		}
	}
	return false
}

func capCols(cols []schema.Column, n int) []schema.Column {
	if len(cols) > n {
		return cols[:n]
	}
	return cols
}
