package aep

import (
	"testing"

	"fisql/internal/dataset"
	"fisql/internal/engine"
)

var built *dataset.Dataset

func ds(t *testing.T) *dataset.Dataset {
	t.Helper()
	if built == nil {
		var err error
		built, err = Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
	}
	return built
}

func TestCorpusSize(t *testing.T) {
	d := ds(t)
	if got := len(d.Examples); got != 200 {
		t.Fatalf("examples: %d, want 200", got)
	}
}

func TestZeroShotErrorCount(t *testing.T) {
	d := ds(t)
	if got := len(d.Errors()); got != 152 {
		t.Fatalf("trapped: %d, want 152 (24%% zero-shot accuracy)", got)
	}
}

func TestOneShotFailureCounts(t *testing.T) {
	d := ds(t)
	ragErrors := 0
	for _, e := range d.Errors() {
		covered := true
		for _, tr := range e.Traps {
			if !tr.DemoCovered {
				covered = false
			}
		}
		if !covered {
			ragErrors++
		}
	}
	if ragErrors != 54 {
		t.Errorf("one-shot failures: %d, want 54", ragErrors)
	}
	if got := len(d.AnnotatedErrors()); got != 53 {
		t.Errorf("annotated: %d, want 53", got)
	}
}

func TestQuotaComposition(t *testing.T) {
	d := ds(t)
	var twoTrap, good, rewrite, gh, misaligned, vague int
	for _, e := range d.AnnotatedErrors() {
		if len(e.Traps) == 2 {
			twoTrap++
			continue
		}
		tr := e.Traps[0]
		switch {
		case tr.GroundingHard:
			gh++
		case tr.Misaligned:
			misaligned++
		case tr.Vague:
			vague++
		default:
			good++
			if tr.RewriteFixable {
				rewrite++
			}
		}
	}
	if twoTrap != 4 || good != 36 || rewrite != 19 || gh != 1 || misaligned != 6 || vague != 6 {
		t.Errorf("composition: twoTrap=%d good=%d rewrite=%d gh=%d misaligned=%d vague=%d",
			twoTrap, good, rewrite, gh, misaligned, vague)
	}
}

func TestAllSQLExecutesAndTrapsBite(t *testing.T) {
	d := ds(t)
	for _, e := range d.Examples {
		ex := engine.NewExecutor(d.DBs[e.DB])
		gold, err := ex.Query(e.Gold)
		if err != nil {
			t.Fatalf("%s gold: %v", e.ID, err)
		}
		if len(e.Traps) == 0 {
			continue
		}
		wrong, err := ex.Query(e.WrongSQL())
		if err != nil {
			t.Fatalf("%s wrong: %v", e.ID, err)
		}
		if engine.EqualResults(gold, wrong) {
			t.Fatalf("%s: trap does not change execution", e.ID)
		}
	}
}

func TestJargonTrapPresent(t *testing.T) {
	d := ds(t)
	found := false
	for _, e := range d.Examples {
		for _, tr := range e.Traps {
			if tr.Kind == dataset.WrongTable {
				found = true
			}
		}
	}
	if !found {
		t.Error("expected at least one closed-domain WrongTable trap")
	}
}

func TestNoDemoLeaks(t *testing.T) {
	d := ds(t)
	for _, e := range d.Errors() {
		for _, tr := range e.Traps {
			if tr.DemoCovered {
				continue
			}
			for _, demo := range d.Demos {
				if dataset.ContainsPhrase(demo.Question, tr.Phrase) {
					t.Fatalf("demo %q leaks phrase %q", demo.Question, tr.Phrase)
				}
			}
		}
	}
}
