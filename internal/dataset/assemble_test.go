package dataset

import (
	"testing"

	"fisql/internal/schema"
)

// miniAssemble builds a small corpus over the test schema with every slot
// kind exercised, covering the assembler in-package.
func miniAssemble(t *testing.T, q Quotas) *Dataset {
	t.Helper()
	ds := New("mini")
	rng := newRng()
	g, err := NewGen(ds, childSchema(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Populate(30); err != nil {
		t.Fatal(err)
	}
	singer := g.Schema.Table("singer")
	concert := g.Schema.Table("concert")
	var candidates []*Candidate
	add := func(c *Candidate) {
		if c != nil {
			candidates = append(candidates, c)
		}
	}
	name := *singer.Column("name")
	song := *singer.Column("song_name")
	country := *singer.Column("country")
	age := *singer.Column("age")
	date := *singer.Column("joined_date")
	venue := *concert.Column("venue")
	att := *concert.Column("attendance")

	add(g.CountAll(singer))
	add(g.CountAll(concert))
	for _, proj := range []schema.Column{name, song} {
		for _, filter := range []schema.Column{country, song, name} {
			if proj.Name == filter.Name {
				continue
			}
			add(g.FilterEq(singer, proj, filter))
		}
	}
	add(g.ListCol(singer, name))
	add(g.ListCol(concert, venue))
	add(g.ListDistinct(singer, country))
	add(g.CountFilterCmp(singer, age))
	add(g.CountFilterCmp(concert, att))
	add(g.AggCol(singer, age, "AVG"))
	add(g.AggCol(concert, att, "MAX"))
	add(g.Superlative(singer, song, age, true))
	add(g.OrderList(singer, name, age, false))
	add(g.GroupCount(singer, country))
	add(g.Having(singer, country, 2, 5))
	add(g.FilterTwo(singer, name, country, song))
	add(g.InList(singer, name, country))
	add(g.LikePrefix(singer, song, name))
	for _, m := range Months()[:6] {
		add(g.CreatedIn(singer, date, m, 2024, 2023))
	}
	add(g.NotIn(singer, name, concert, concert.ForeignKeys[0]))

	asm := &Assembler{DS: ds, Gens: map[string]*Gen{g.Schema.Name: g}, Rng: rng}
	if err := asm.Assemble(candidates, q); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAssembleMiniCorpus(t *testing.T) {
	q := Quotas{
		Total:             20,
		Covered:           3,
		TwoTrap:           1,
		TwoTrapGood:       1,
		SingleGood:        3,
		GoodAmbiguous:     1,
		GoodRewrite:       1,
		GroundingHard:     1,
		Misaligned:        1,
		Vague:             1,
		Unannotated:       1,
		GenericDemosPerDB: 2,
	}
	ds := miniAssemble(t, q)
	if len(ds.Examples) != 20 {
		t.Fatalf("examples: %d", len(ds.Examples))
	}
	if got := len(ds.Errors()); got != q.Trapped() {
		t.Errorf("trapped: %d, want %d", got, q.Trapped())
	}

	var covered, twoTrap, ambiguous, rewrite, gh, misaligned, vague, unannotated int
	for _, e := range ds.Errors() {
		if len(e.Traps) == 2 {
			twoTrap++
			continue
		}
		tr := e.Traps[0]
		switch {
		case tr.DemoCovered:
			covered++
		case tr.AmbiguousOp:
			ambiguous++
		case tr.RewriteFixable:
			rewrite++
		case tr.GroundingHard:
			gh++
		case tr.Misaligned:
			misaligned++
			if tr.DecoyColumn == "" || tr.DecoyValue == "" {
				t.Error("misaligned trap lacks a decoy")
			}
		case tr.Vague:
			vague++
		case !e.Annotatable:
			unannotated++
		}
	}
	if covered != 3 || twoTrap != 1 || ambiguous != 1 || rewrite != 1 ||
		gh != 1 || misaligned != 1 || vague != 1 || unannotated != 1 {
		t.Errorf("slots: covered=%d twoTrap=%d amb=%d rw=%d gh=%d mis=%d vague=%d unann=%d",
			covered, twoTrap, ambiguous, rewrite, gh, misaligned, vague, unannotated)
	}

	// Demo pool: covering demos plus generic demos, none leaking uncovered
	// phrases.
	if len(ds.Demos) < 3 {
		t.Errorf("demo pool too small: %d", len(ds.Demos))
	}
	for _, e := range ds.Errors() {
		for _, tr := range e.Traps {
			if tr.DemoCovered {
				continue
			}
			for _, d := range ds.Demos {
				if ContainsPhrase(d.Question, tr.Phrase) {
					t.Fatalf("demo %q leaks %q", d.Question, tr.Phrase)
				}
			}
		}
	}
}

func TestAssembleFailsWhenQuotaUnfillable(t *testing.T) {
	// Demand more grounding-hard examples than FilterTwo candidates exist.
	q := Quotas{Total: 5, GroundingHard: 4}
	ds := New("mini2")
	g, err := NewGen(ds, testSchema(), newRng())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Populate(20); err != nil {
		t.Fatal(err)
	}
	singer := g.Schema.Table("singer")
	candidates := []*Candidate{
		g.CountAll(singer),
		g.FilterTwo(singer, *singer.Column("name"), *singer.Column("country"), *singer.Column("song_name")),
	}
	asm := &Assembler{DS: ds, Gens: map[string]*Gen{g.Schema.Name: g}, Rng: newRng()}
	if err := asm.Assemble(candidates, q); err == nil {
		t.Fatal("unfillable quota must error")
	}
}

func TestAssembleFailsWhenTooFewCandidates(t *testing.T) {
	ds := New("mini3")
	g, err := NewGen(ds, testSchema(), newRng())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Populate(20); err != nil {
		t.Fatal(err)
	}
	candidates := []*Candidate{g.CountAll(g.Schema.Table("singer"))}
	asm := &Assembler{DS: ds, Gens: map[string]*Gen{g.Schema.Name: g}, Rng: newRng()}
	if err := asm.Assemble(candidates, Quotas{Total: 10}); err == nil {
		t.Fatal("too few candidates must error")
	}
}
