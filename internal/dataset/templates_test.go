package dataset

import (
	"strings"
	"testing"

	"fisql/internal/schema"
)

// Every template constructor must produce a candidate whose gold query
// executes, whose paraphrase carries each trap phrase, and whose traps
// survive Realize verification (execution-different, FixedIn-coherent).

func childSchema() *schema.Schema {
	s := testSchema()
	s.Tables = append(s.Tables, schema.Table{
		Name: "concert", NL: []string{"concerts"},
		PrimaryKey:  []string{"concert_id"},
		ForeignKeys: []schema.ForeignKey{{Column: "singer_id", RefTable: "singer", RefColumn: "singer_id"}},
		Columns: []schema.Column{
			{Name: "concert_id", Type: "INT"},
			{Name: "singer_id", Type: "INT"},
			{Name: "venue", Type: "TEXT", NL: []string{"venue"}},
			{Name: "attendance", Type: "INT", NL: []string{"attendance"}},
		},
	})
	return s
}

func fullGen(t *testing.T) *Gen {
	t.Helper()
	ds := New("ttest")
	g, err := NewGen(ds, childSchema(), newRng())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Populate(30); err != nil {
		t.Fatal(err)
	}
	return g
}

func checkCandidate(t *testing.T, g *Gen, c *Candidate, name string) {
	t.Helper()
	if c == nil {
		t.Fatalf("%s: candidate not built", name)
	}
	if !g.execOK(c.Gold) {
		t.Fatalf("%s: gold does not execute", name)
	}
	for _, p := range c.Perturbs {
		if !ContainsPhrase(c.Paraphrase, p.Trap.Phrase) {
			t.Errorf("%s: paraphrase %q lacks phrase %q", name, c.Paraphrase, p.Trap.Phrase)
		}
		if !ContainsPhrase(c.Question, p.Trap.Phrase) && !strings.Contains(
			schema.Normalize(c.Question), schema.Normalize(p.Trap.Phrase)) {
			t.Errorf("%s: question %q lacks phrase %q", name, c.Question, p.Trap.Phrase)
		}
	}
}

func TestTemplateConstructors(t *testing.T) {
	g := fullGen(t)
	singer := g.Schema.Table("singer")
	concert := g.Schema.Table("concert")
	name := *singer.Column("name")
	song := *singer.Column("song_name")
	country := *singer.Column("country")
	age := *singer.Column("age")
	venue := *concert.Column("venue")
	fk := concert.ForeignKeys[0]

	cases := []struct {
		name string
		c    *Candidate
	}{
		{"CountAll", g.CountAll(singer)},
		{"ListCol", g.ListCol(singer, name)},
		{"ListDistinct", g.ListDistinct(singer, country)},
		{"FilterEq", g.FilterEq(singer, name, country)},
		{"FilterTwo", g.FilterTwo(singer, name, country, song)},
		{"CountFilterCmp", g.CountFilterCmp(singer, age)},
		{"AggCol", g.AggCol(singer, age, "AVG")},
		{"Superlative", g.Superlative(singer, song, age, false)},
		{"OrderList", g.OrderList(singer, name, age, true)},
		{"GroupCount", g.GroupCount(singer, country)},
		{"Having", g.Having(singer, country, 2, 5)},
		{"JoinList", g.JoinList(concert, venue, singer, name, fk)},
		{"JoinFilter", g.JoinFilter(concert, venue, singer, country, fk)},
		{"InList", g.InList(singer, name, country)},
		{"LikePrefix", g.LikePrefix(singer, song, name)},
		{"CreatedIn", g.CreatedIn(singer, *singer.Column("joined_date"), "March", 2024, 2023)},
		{"NotIn", g.NotIn(singer, name, concert, fk)},
	}
	for _, tc := range cases {
		checkCandidate(t, g, tc.c, tc.name)
	}
}

func TestTemplatesRealizeWithEachPerturb(t *testing.T) {
	g := fullGen(t)
	singer := g.Schema.Table("singer")
	name := *singer.Column("name")
	country := *singer.Column("country")

	// For each trappable template, at least one perturbation must survive
	// Realize's verification across a few attempts.
	builders := map[string]func() *Candidate{
		"FilterEq":  func() *Candidate { return g.FilterEq(singer, name, country) },
		"InList":    func() *Candidate { return g.InList(singer, name, country) },
		"CountAll":  func() *Candidate { return g.CountAll(singer) },
		"GroupSize": func() *Candidate { return g.GroupCount(singer, country) },
	}
	for bname, build := range builders {
		realized := false
		for attempt := 0; attempt < 10 && !realized; attempt++ {
			c := build()
			if c == nil {
				continue
			}
			for pi := range c.Perturbs {
				if e := g.Realize(c, c.Perturbs[pi:pi+1]); e != nil {
					realized = true
					break
				}
			}
		}
		if !realized {
			t.Errorf("%s: no perturbation ever realizes", bname)
		}
	}
}

func TestWrongTablePairRequiresDistinctCounts(t *testing.T) {
	g := fullGen(t)
	singer := g.Schema.Table("singer")
	concert := g.Schema.Table("concert")
	c := g.WrongTablePair(singer, concert, "artists on the roster")
	checkCandidate(t, g, c, "WrongTablePair")
	e := g.Realize(c, c.Perturbs)
	// Tables are populated with different row counts, so the trap bites.
	if e == nil {
		t.Fatal("wrong-table pair failed to realize")
	}
	if e.Traps[0].Kind != WrongTable {
		t.Errorf("kind: %v", e.Traps[0].Kind)
	}
}
