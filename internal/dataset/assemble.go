package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"fisql/internal/engine"
	"fisql/internal/schema"
	"fisql/internal/sqlast"
)

// Quotas fixes the composition of a benchmark: how many examples are
// trapped, how traps are covered by demonstrations, and how the simulated
// annotator behaves on the resulting errors. The numbers are dealt exactly,
// so headline statistics (one-shot accuracy, error counts, annotated-error
// counts) are reproducible; everything *downstream* of the quotas — whether
// a given method actually corrects a given error — is mechanical.
type Quotas struct {
	// Total examples in the benchmark.
	Total int
	// Covered: single-trap examples whose trap phrase gets a covering
	// demonstration (fixed by retrieval-augmented prompting).
	Covered int
	// TwoTrap: uncovered examples carrying two traps; TwoTrapGood of them
	// have a correctable second trap (fixed in feedback round 2).
	TwoTrap, TwoTrapGood int
	// SingleGood: uncovered single-trap examples with aligned,
	// interpretable feedback — corrected in round 1.
	SingleGood int
	// GoodAmbiguous of the SingleGood use op-ambiguous feedback phrasing
	// (requires MissingDistinct traps); GoodRewrite of them are fixable by
	// the Query-Rewrite baseline. The two subsets are disjoint.
	GoodAmbiguous, GoodRewrite int
	// GroundingHard: uncovered single-trap examples whose feedback is
	// aligned but un-grounded (two plausible edit sites); corrected only
	// with a highlight. Requires grounding-hard candidates (FilterTwo).
	GroundingHard int
	// Misaligned / Vague: uncovered single-trap examples whose feedback
	// does not help (paper causes (c) and (b)).
	Misaligned, Vague int
	// Unannotated: uncovered trapped examples without feedback.
	Unannotated int
	// GenericDemosPerDB adds up to this many non-covering demonstrations
	// per database for retrieval realism.
	GenericDemosPerDB int
}

// Trapped returns the number of trapped (zero-shot-error) examples implied
// by the quotas.
func (q Quotas) Trapped() int {
	return q.Covered + q.TwoTrap + q.SingleGood + q.GroundingHard + q.Misaligned + q.Vague + q.Unannotated
}

// Errors returns the number of RAG-time errors implied by the quotas.
func (q Quotas) Errors() int { return q.Trapped() - q.Covered }

// slotKind enumerates what role an example is dealt into.
type slotKind int

const (
	slotCover slotKind = iota
	slotTwoTrapGood
	slotTwoTrapBad
	slotGoodAmbiguous
	slotGoodRewrite
	slotGoodPlain
	slotGroundingHard
	slotMisaligned
	slotVague
	slotUnannotated
	slotClean
)

// Assembler deals candidates into quota slots and realizes them as
// examples.
type Assembler struct {
	DS   *Dataset
	Gens map[string]*Gen // by database name
	Rng  *rand.Rand

	// coverSafe reports whether a candidate's paraphrase can serve as a
	// covering demonstration without leaking another candidate's trap
	// phrase; installed by Assemble.
	coverSafe func(*Candidate) bool
}

// Assemble builds the dataset's examples and demonstration pool from the
// candidate list according to the quotas. Candidates that fail verification
// for a slot are retried for later slots; left-over candidates become clean
// (untrapped) examples.
func (a *Assembler) Assemble(candidates []*Candidate, q Quotas) error {
	a.Rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	// Deduplicate question texts.
	seen := map[string]bool{}
	uniq := candidates[:0]
	for _, c := range candidates {
		key := schema.Normalize(c.Question)
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, c)
	}
	candidates = uniq

	// Pre-compute every candidate's trap phrases (normalized). A covering
	// demonstration must not contain any *other* candidate's phrase, or it
	// could silently disambiguate an example that is meant to stay an
	// error; checking against all candidates up-front keeps the choice
	// independent of placement order (and of the seed).
	phrasesByCandidate := make([][]string, len(candidates))
	candidateIndex := make(map[*Candidate]int, len(candidates))
	var allPhrases []string
	for i, c := range candidates {
		candidateIndex[c] = i
		for _, p := range c.Perturbs {
			np := schema.Normalize(p.Trap.Phrase)
			phrasesByCandidate[i] = append(phrasesByCandidate[i], np)
			allPhrases = append(allPhrases, np)
		}
	}
	a.coverSafe = func(c *Candidate) bool {
		para := schema.Normalize(c.Paraphrase)
		own := map[string]bool{}
		for _, p := range phrasesByCandidate[candidateIndex[c]] {
			own[p] = true
		}
		for _, p := range allPhrases {
			if own[p] || p == "" {
				continue
			}
			if strings.Contains(para, p) {
				return false
			}
		}
		return true
	}

	// Remaining slot counts, consumed as candidates fill them.
	remaining := map[slotKind]int{
		slotCover:         q.Covered,
		slotTwoTrapGood:   q.TwoTrapGood,
		slotTwoTrapBad:    q.TwoTrap - q.TwoTrapGood,
		slotGoodAmbiguous: q.GoodAmbiguous,
		slotGoodRewrite:   q.GoodRewrite,
		slotGoodPlain:     q.SingleGood - q.GoodAmbiguous - q.GoodRewrite,
		slotGroundingHard: q.GroundingHard,
		slotMisaligned:    q.Misaligned,
		slotVague:         q.Vague,
		slotUnannotated:   q.Unannotated,
	}
	for k, n := range remaining {
		if n < 0 {
			return fmt.Errorf("inconsistent quotas: slot %d has negative count %d", k, n)
		}
	}
	// Scarcer slots first so generic candidates don't exhaust them.
	order := []slotKind{
		slotGroundingHard, slotGoodAmbiguous, slotTwoTrapGood, slotTwoTrapBad,
		slotGoodRewrite, slotGoodPlain, slotMisaligned, slotVague,
		slotCover, slotUnannotated,
	}

	var demos []Demo
	total := 0
	var clean []*Candidate
	for _, c := range candidates {
		if total >= q.Total {
			break
		}
		placed := false
		for _, k := range order {
			if remaining[k] == 0 {
				continue
			}
			e := a.realizeFor(c, k)
			if e == nil {
				continue
			}
			e.ID = fmt.Sprintf("%s-%04d", a.DS.Name, len(a.DS.Examples))
			a.DS.AddExample(e)
			if k == slotCover {
				demos = append(demos, CoverDemo(e, c.Paraphrase))
			}
			remaining[k]--
			total++
			placed = true
			break
		}
		if !placed {
			clean = append(clean, c)
		}
	}
	for k, n := range remaining {
		if n > 0 {
			return fmt.Errorf("quota unfilled: slot %d needs %d more candidates", k, n)
		}
	}
	// Fill the remainder with clean examples.
	for _, c := range clean {
		if total >= q.Total {
			break
		}
		e := a.Gens[c.DB].Realize(c, nil)
		if e == nil {
			continue
		}
		e.ID = fmt.Sprintf("%s-%04d", a.DS.Name, len(a.DS.Examples))
		a.DS.AddExample(e)
		total++
	}
	if total < q.Total {
		return fmt.Errorf("not enough candidates: built %d of %d examples", total, q.Total)
	}

	// Phrase-conflict pass: no demonstration may contain the phrase of a
	// trap that must remain uncovered, or retrieval would silently fix it.
	uncovered := a.uncoveredPhrases()
	for _, d := range demos {
		for _, p := range uncovered {
			if ContainsPhrase(d.Question, p) {
				return fmt.Errorf("covering demo %q leaks uncovered trap phrase %q", d.Question, p)
			}
		}
	}
	// Generic demonstrations from clean examples, conflict-checked.
	perDB := map[string]int{}
	for _, e := range a.DS.Examples {
		if len(e.Traps) > 0 || perDB[e.DB] >= q.GenericDemosPerDB {
			continue
		}
		conflict := false
		for _, p := range uncovered {
			if ContainsPhrase(e.Question, p) {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		demos = append(demos, Demo{DB: e.DB, Question: e.Question, SQL: e.Gold})
		perDB[e.DB]++
	}
	a.DS.Demos = demos
	return nil
}

func (a *Assembler) uncoveredPhrases() []string {
	var out []string
	for _, e := range a.DS.Examples {
		for _, t := range e.Traps {
			if !t.DemoCovered {
				out = append(out, t.Phrase)
			}
		}
	}
	return out
}

// realizeFor tries to realize the candidate for a slot, returning nil if the
// candidate can't support it.
func (a *Assembler) realizeFor(c *Candidate, k slotKind) *Example {
	g := a.Gens[c.DB]
	switch k {
	case slotCover, slotGoodPlain, slotGoodRewrite, slotUnannotated, slotMisaligned, slotVague:
		// Start from a rotating offset so the corpus mixes trap kinds
		// instead of always planting each template's first perturbation.
		offset := 0
		if len(c.Perturbs) > 1 {
			offset = a.Rng.Intn(len(c.Perturbs))
		}
		for n := range c.Perturbs {
			i := (offset + n) % len(c.Perturbs)
			p := c.Perturbs[i]
			if p.Trap.Kind == MissingDistinct {
				continue // reserved for op-ambiguity slots
			}
			if k == slotCover {
				if !ContainsPhrase(c.Paraphrase, p.Trap.Phrase) {
					continue // the covering demo must carry the trap phrase
				}
				if a.coverSafe != nil && !a.coverSafe(c) {
					continue // the demo would leak another trap's phrase
				}
			}
			if e := g.Realize(c, []Perturb{p}); e != nil {
				t := &e.Traps[0]
				switch k {
				case slotCover:
					t.DemoCovered = true
				case slotGoodPlain:
					e.Annotatable = true
				case slotGoodRewrite:
					e.Annotatable = true
					t.RewriteFixable = true
				case slotMisaligned:
					if !a.decoyFor(g, e, t) {
						return nil
					}
					e.Annotatable = true
					t.Misaligned = true
				case slotVague:
					e.Annotatable = true
					t.Vague = true
				}
				return e
			}
		}
		return nil
	case slotGoodAmbiguous:
		for i := range c.Perturbs {
			p := c.Perturbs[i]
			if p.Trap.Kind != MissingDistinct {
				continue
			}
			if e := g.Realize(c, []Perturb{p}); e != nil {
				e.Annotatable = true
				e.Traps[0].AmbiguousOp = true
				return e
			}
		}
		return nil
	case slotGroundingHard:
		if c.Hint != HintGroundingHard {
			return nil
		}
		if e := g.Realize(c, []Perturb{c.Perturbs[0]}); e != nil {
			e.Annotatable = true
			e.Traps[0].GroundingHard = true
			return e
		}
		return nil
	case slotTwoTrapGood, slotTwoTrapBad:
		// Try ordered pairs of distinct perturbations until a verified,
		// repair-compatible combination is found. Compatibility matters:
		// fixing the first trap must neither mask nor corrupt the second
		// (e.g. a dropped WHERE clause leaves a wrong-literal edit with
		// nothing to edit), so only independent-clause pairs qualify.
		for i := range c.Perturbs {
			for j := range c.Perturbs {
				if i == j {
					continue
				}
				p0, p1 := c.Perturbs[i], c.Perturbs[j]
				if !compatibleTraps(p0.Trap.Kind, p1.Trap.Kind) {
					continue
				}
				e := g.Realize(c, []Perturb{p0, p1})
				if e == nil {
					continue
				}
				e.Annotatable = true
				if k == slotTwoTrapBad {
					// Second trap's feedback never helps: alternate
					// between vague and misaligned for variety.
					if len(a.DS.Examples)%2 == 0 {
						e.Traps[1].Vague = true
					} else {
						if !a.decoyFor(g, e, &e.Traps[1]) {
							e.Traps[1].Vague = true
						} else {
							e.Traps[1].Misaligned = true
						}
					}
				}
				return e
			}
		}
		return nil
	}
	return nil
}

// compatibleTraps reports whether two traps can coexist on one example such
// that sequentially repairing them (first then second) reconstructs the
// gold query. The pairs are conservative: both traps live in the WHERE
// clause but touch different conjuncts.
func compatibleTraps(a, b TrapKind) bool {
	return (a == WrongLiteral && b == ExtraFilter) || (a == ExtraFilter && b == WrongLiteral)
}

// decoyFor picks a decoy column+value for misaligned feedback: any column
// of the gold query's first table that is not the trap's own column.
func (a *Assembler) decoyFor(g *Gen, e *Example, t *Trap) bool {
	sel := mustParse(e.Gold)
	if sel == nil || sel.From == nil || sel.From.First.Name == "" {
		return false
	}
	st := g.Schema.Table(sel.From.First.Name)
	if st == nil {
		return false
	}
	for _, col := range st.Columns {
		if strings.EqualFold(col.Name, t.Column) || strings.EqualFold(col.Name, t.Old) || strings.EqualFold(col.Name, t.New) {
			continue
		}
		_, v, ok := g.SampleValue(st.Name, col.Name)
		if !ok {
			continue
		}
		// The decoy must really change execution when applied to the gold
		// query, or "misaligned" feedback would coincidentally correct.
		withDecoy := sqlast.CloneSelect(sel)
		lit := &sqlast.Literal{Kind: sqlast.LitString, Text: v.String()}
		if v.T == engine.TypeInt || v.T == engine.TypeFloat {
			lit.Kind = sqlast.LitNumber
		}
		cond := &sqlast.Binary{Op: sqlast.OpEq,
			L: &sqlast.ColumnRef{Column: col.Name}, R: lit}
		if withDecoy.Where == nil {
			withDecoy.Where = cond
		} else {
			withDecoy.Where = &sqlast.Binary{Op: sqlast.OpAnd, L: withDecoy.Where, R: cond}
		}
		if !g.execDiffers(sel, withDecoy) {
			continue
		}
		t.DecoyColumn = col.Name
		t.DecoyValue = v.String()
		return true
	}
	return false
}
