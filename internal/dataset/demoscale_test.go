package dataset

import (
	"reflect"
	"testing"
)

func scaleFixture() []Demo {
	return []Demo{
		{DB: "music", Question: "How many singers are there?", SQL: "SELECT COUNT(*) FROM singer"},
		{DB: "pets", Question: "List the weight of all pets.", SQL: "SELECT weight FROM pet"},
	}
}

func TestScaleDemosIdentity(t *testing.T) {
	demos := scaleFixture()
	for _, mult := range []int{-1, 0, 1} {
		if got := ScaleDemos(demos, mult); !reflect.DeepEqual(got, demos) {
			t.Errorf("mult=%d: pool changed", mult)
		}
	}
	if got := ScaleDemos(nil, 32); len(got) != 0 {
		t.Errorf("empty pool scaled to %d", len(got))
	}
}

func TestScaleDemosShape(t *testing.T) {
	demos := scaleFixture()
	got := ScaleDemos(demos, 32)
	if len(got) != len(demos)*32 {
		t.Fatalf("len = %d, want %d", len(got), len(demos)*32)
	}
	// Originals first, byte-identical.
	if !reflect.DeepEqual(got[:len(demos)], demos) {
		t.Fatal("originals not preserved as prefix")
	}
	// Every entry unique under the retrieval dedup key, same db and SQL as
	// its base.
	type key struct{ db, q, sql string }
	seen := map[key]bool{}
	for i, d := range got {
		base := demos[i%len(demos)]
		if d.DB != base.DB || d.SQL != base.SQL {
			t.Fatalf("entry %d changed db/sql: %+v", i, d)
		}
		k := key{d.DB, d.Question, d.SQL}
		if seen[k] {
			t.Fatalf("duplicate scaled demo: %+v", d)
		}
		seen[k] = true
	}
	// Deterministic.
	if !reflect.DeepEqual(got, ScaleDemos(demos, 32)) {
		t.Fatal("ScaleDemos not deterministic")
	}
}
