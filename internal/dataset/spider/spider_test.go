package spider

import (
	"testing"

	"fisql/internal/dataset"
	"fisql/internal/engine"
	"fisql/internal/sqlparse"
)

var built *dataset.Dataset

func ds(t *testing.T) *dataset.Dataset {
	t.Helper()
	if built == nil {
		var err error
		built, err = Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
	}
	return built
}

func TestCorpusSize(t *testing.T) {
	d := ds(t)
	if got := len(d.Examples); got != 1034 {
		t.Fatalf("examples: %d, want 1034", got)
	}
	if got := len(d.Schemas); got != 20 {
		t.Fatalf("schemas: %d, want 20", got)
	}
}

func TestZeroShotErrorCount(t *testing.T) {
	d := ds(t)
	if got := len(d.Errors()); got != 325 {
		t.Fatalf("trapped examples: %d, want 325 (zero-shot accuracy 68.6%%)", got)
	}
}

func TestRAGErrorAndAnnotationCounts(t *testing.T) {
	d := ds(t)
	ragErrors := 0
	for _, e := range d.Errors() {
		covered := true
		for _, tr := range e.Traps {
			if !tr.DemoCovered {
				covered = false
			}
		}
		if !covered {
			ragErrors++
		}
	}
	if ragErrors != 243 {
		t.Errorf("RAG errors: %d, want 243", ragErrors)
	}
	if got := len(d.AnnotatedErrors()); got != 101 {
		t.Errorf("annotated errors: %d, want 101", got)
	}
}

func TestQuotaComposition(t *testing.T) {
	d := ds(t)
	var twoTrap, good, ambiguous, rewrite, misaligned, vague int
	for _, e := range d.AnnotatedErrors() {
		if len(e.Traps) == 2 {
			twoTrap++
			continue
		}
		tr := e.Traps[0]
		switch {
		case tr.Misaligned:
			misaligned++
		case tr.Vague:
			vague++
		default:
			good++
			if tr.AmbiguousOp {
				ambiguous++
			}
			if tr.RewriteFixable {
				rewrite++
			}
		}
	}
	if twoTrap != 20 || good != 45 || ambiguous != 1 || rewrite != 17 || misaligned != 20 || vague != 16 {
		t.Errorf("composition: twoTrap=%d good=%d ambiguous=%d rewrite=%d misaligned=%d vague=%d",
			twoTrap, good, ambiguous, rewrite, misaligned, vague)
	}
}

func TestAllSQLExecutes(t *testing.T) {
	d := ds(t)
	for _, e := range d.Examples {
		db := d.DBs[e.DB]
		ex := engine.NewExecutor(db)
		if _, err := ex.Query(e.Gold); err != nil {
			t.Fatalf("%s gold %q: %v", e.ID, e.Gold, err)
		}
		for mask, sql := range e.Variants {
			if _, err := ex.Query(sql); err != nil {
				t.Fatalf("%s variant %b %q: %v", e.ID, mask, sql, err)
			}
		}
	}
}

func TestTrappedVariantsDifferFromGold(t *testing.T) {
	d := ds(t)
	for _, e := range d.Errors() {
		db := d.DBs[e.DB]
		ex := engine.NewExecutor(db)
		gold, err := ex.Query(e.Gold)
		if err != nil {
			t.Fatal(err)
		}
		wrong, err := ex.Query(e.WrongSQL())
		if err != nil {
			t.Fatal(err)
		}
		if engine.EqualResults(gold, wrong) {
			t.Fatalf("%s: wrong SQL executes identically to gold\n gold: %s\nwrong: %s",
				e.ID, e.Gold, e.WrongSQL())
		}
	}
}

func TestFixedInConsistency(t *testing.T) {
	d := ds(t)
	for _, e := range d.Errors() {
		goldSel, err := sqlparse.ParseSelect(e.Gold)
		if err != nil {
			t.Fatal(err)
		}
		for i := range e.Traps {
			if !e.FixedIn(i, goldSel) {
				t.Errorf("%s: trap %d not detected as fixed in gold", e.ID, i)
			}
		}
		if m := e.UnfixedMask(e.WrongSQL()); m != e.FullMask() {
			t.Errorf("%s: wrong SQL unfixed mask %b, want %b", e.ID, m, e.FullMask())
		}
	}
}

func TestNoDemoLeaksUncoveredPhrases(t *testing.T) {
	d := ds(t)
	for _, e := range d.Errors() {
		for _, tr := range e.Traps {
			if tr.DemoCovered {
				continue
			}
			for _, demo := range d.Demos {
				if demo.DB != e.DB {
					continue
				}
				if dataset.ContainsPhrase(demo.Question, tr.Phrase) {
					t.Fatalf("demo %q leaks phrase %q of %s", demo.Question, tr.Phrase, e.ID)
				}
			}
		}
	}
}

func TestCoveredTrapsHaveCoveringDemo(t *testing.T) {
	d := ds(t)
	for _, e := range d.Errors() {
		for _, tr := range e.Traps {
			if !tr.DemoCovered {
				continue
			}
			found := false
			for _, demo := range d.Demos {
				if demo.DB == e.DB && dataset.ContainsPhrase(demo.Question, tr.Phrase) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: covered trap %q has no covering demo", e.ID, tr.Phrase)
			}
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	d1, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Examples) != len(d2.Examples) {
		t.Fatal("nondeterministic example count")
	}
	for i := range d1.Examples {
		if d1.Examples[i].Question != d2.Examples[i].Question || d1.Examples[i].Gold != d2.Examples[i].Gold {
			t.Fatalf("example %d differs between builds", i)
		}
	}
}

func TestQuestionsUnique(t *testing.T) {
	d := ds(t)
	seen := map[string]bool{}
	for _, e := range d.Examples {
		if seen[e.Question] {
			t.Fatalf("duplicate question %q", e.Question)
		}
		seen[e.Question] = true
	}
}
