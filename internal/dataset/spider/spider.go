package spider

import (
	"fmt"
	"math/rand"

	"fisql/internal/dataset"
	"fisql/internal/engine"
	"fisql/internal/schema"
)

// Seed is the default corpus seed; the benchmark is fully determined by it.
const Seed = 20250325

// Paper-calibrated quotas: 1034 dev questions; 325 zero-shot errors (68.6%
// zero-shot accuracy, Figure 2); 82 recovered by RAG demonstrations leaving
// 243 Assistant errors (§4.1); 101 annotated errors split per the paper's
// Table 2 / Figure 8 analysis.
func quotas() dataset.Quotas {
	return dataset.Quotas{
		Total:             1034,
		Covered:           82,
		TwoTrap:           20,
		TwoTrapGood:       15,
		SingleGood:        45,
		GoodAmbiguous:     1,
		GoodRewrite:       17,
		GroundingHard:     0,
		Misaligned:        20,
		Vague:             16,
		Unannotated:       142,
		GenericDemosPerDB: 5,
	}
}

// Build constructs the SPIDER-like benchmark with the default seed.
func Build() (*dataset.Dataset, error) { return BuildSeed(Seed) }

// BuildRows constructs the default-seed benchmark with every database's
// tables grown to mult times their base row count, for exercising the
// engine at scale. Scaling runs strictly after corpus assembly and only
// appends rows, so examples, demonstrations and the 1x data are
// byte-for-byte identical to Build; mult <= 1 IS Build. The scaled rows are
// deterministic for a given multiplier.
func BuildRows(mult int) (*dataset.Dataset, error) { return buildSeedRows(Seed, mult) }

// BuildSeed constructs the benchmark with an explicit seed (used by
// robustness tests; the headline numbers hold for the default seed).
func BuildSeed(seed int64) (*dataset.Dataset, error) { return buildSeedRows(seed, 1) }

func buildSeedRows(seed int64, mult int) (*dataset.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New("spider")
	gens := make(map[string]*dataset.Gen)
	var candidates []*dataset.Candidate
	for _, s := range Schemas() {
		g, err := dataset.NewGen(ds, s, rng)
		if err != nil {
			return nil, err
		}
		if err := g.Populate(40); err != nil {
			return nil, fmt.Errorf("populate %s: %w", s.Name, err)
		}
		gens[s.Name] = g
		candidates = append(candidates, Candidates(g)...)
	}
	asm := &dataset.Assembler{DS: ds, Gens: gens, Rng: rng}
	if err := asm.Assemble(candidates, quotas()); err != nil {
		return nil, err
	}
	if mult > 1 {
		// A fresh stream (not the assembly rng's end state) keeps the scaled
		// rows a pure function of (seed, mult), whatever assembly consumed.
		srng := rand.New(rand.NewSource(seed + 1))
		for _, s := range Schemas() {
			g := gens[s.Name]
			g.Rng = srng
			if err := g.ScaleRows(mult); err != nil {
				return nil, fmt.Errorf("scale %s: %w", s.Name, err)
			}
		}
	}
	return ds, nil
}

// Candidates generates all question candidates for one database.
func Candidates(g *dataset.Gen) []*dataset.Candidate {
	var out []*dataset.Candidate
	add := func(c *dataset.Candidate) {
		if c != nil {
			out = append(out, c)
		}
	}
	for ti := range g.Schema.Tables {
		t := &g.Schema.Tables[ti]
		add(g.CountAll(t))

		textCols := nonKeyColumns(t, engine.TypeText)
		intCols := nonKeyColumns(t, engine.TypeInt)
		numCols := append(append([]schema.Column{}, intCols...), nonKeyColumns(t, engine.TypeFloat)...)
		dateCols := dateColumns(t)

		for _, c := range capCols(textCols, 3) {
			add(g.ListCol(t, c))
			add(g.ListDistinct(t, c))
			add(g.GroupCount(t, c))
			add(g.Having(t, c, 2, 5))
		}
		for _, proj := range capCols(textCols, 2) {
			for _, filter := range capCols(textCols, 3) {
				if proj.Name == filter.Name {
					continue
				}
				add(g.FilterEq(t, proj, filter))
			}
			for _, key := range capCols(numCols, 2) {
				add(g.Superlative(t, proj, key, true))
				add(g.Superlative(t, proj, key, false))
				add(g.OrderList(t, proj, key, false))
				add(g.OrderList(t, proj, key, true))
			}
		}
		for _, c := range capCols(numCols, 3) {
			add(g.CountFilterCmp(t, c))
			add(g.AggCol(t, c, "AVG"))
			add(g.AggCol(t, c, "MAX"))
			if engine.TypeFromSQL(c.Type) == engine.TypeInt {
				add(g.AggCol(t, c, "SUM"))
			}
		}
		if len(textCols) >= 3 {
			add(g.FilterTwo(t, textCols[0], textCols[1], textCols[2]))
		}
		if len(textCols) >= 2 {
			add(g.InList(t, textCols[0], textCols[1]))
			add(g.LikePrefix(t, textCols[1], textCols[0]))
		}
		for _, dc := range dateCols {
			for _, m := range dataset.Months()[:8] {
				add(g.CreatedIn(t, dc, m, 2024, 2023))
			}
		}
		for _, fk := range t.ForeignKeys {
			parent := g.Schema.Table(fk.RefTable)
			if parent == nil {
				continue
			}
			childText := capCols(nonKeyColumns(t, engine.TypeText), 1)
			parentText := capCols(nonKeyColumns(parent, engine.TypeText), 2)
			for _, c1 := range childText {
				for _, c2 := range parentText {
					add(g.JoinList(t, c1, parent, c2, fk))
				}
				for _, pf := range parentText {
					add(g.JoinFilter(t, c1, parent, pf, fk))
				}
			}
			for _, pc := range capCols(parentText, 1) {
				add(g.NotIn(parent, pc, t, fk))
			}
			// Child tables without text columns still get a join question
			// off a numeric column.
			if len(childText) == 0 {
				for _, c1 := range capCols(nonKeyColumns(t, engine.TypeInt), 1) {
					for _, c2 := range parentText {
						add(g.JoinList(t, c1, parent, c2, fk))
					}
				}
			}
		}
	}
	return out
}

func nonKeyColumns(t *schema.Table, typ engine.Type) []schema.Column {
	var out []schema.Column
	for _, c := range t.Columns {
		if engine.TypeFromSQL(c.Type) != typ {
			continue
		}
		if isKeyLike(t, c.Name) {
			continue
		}
		if c.Type == "DATE" {
			continue // dates are text-typed but handled by date templates
		}
		out = append(out, c)
	}
	return out
}

func dateColumns(t *schema.Table) []schema.Column {
	var out []schema.Column
	for _, c := range t.Columns {
		if c.Type == "DATE" {
			out = append(out, c)
		}
	}
	return out
}

func isKeyLike(t *schema.Table, name string) bool {
	for _, pk := range t.PrimaryKey {
		if pk == name {
			return true
		}
	}
	for _, fk := range t.ForeignKeys {
		if fk.Column == name {
			return true
		}
	}
	return false
}

func capCols(cols []schema.Column, n int) []schema.Column {
	if len(cols) > n {
		return cols[:n]
	}
	return cols
}
