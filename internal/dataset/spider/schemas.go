// Package spider builds the synthetic SPIDER-like benchmark: 20 databases
// with common-sense schemas and 1034 dev questions, mirroring the scale and
// template families of the SPIDER validation set the paper evaluates on.
package spider

import "fisql/internal/schema"

// c declares a column; nl lists its natural-language phrases (first is
// canonical).
func c(name, typ string, nl ...string) schema.Column {
	if len(nl) == 0 {
		nl = []string{name}
	}
	return schema.Column{Name: name, Type: typ, NL: nl}
}

func fk(col, refTable, refCol string) schema.ForeignKey {
	return schema.ForeignKey{Column: col, RefTable: refTable, RefColumn: refCol}
}

// Schemas returns the 20 database schemas of the benchmark.
func Schemas() []*schema.Schema {
	return []*schema.Schema{
		{Name: "concert_singer", Tables: []schema.Table{
			{Name: "stadium", NL: []string{"stadiums"}, PrimaryKey: []string{"stadium_id"}, Columns: []schema.Column{
				c("stadium_id", "INT"), c("location", "TEXT", "location"), c("name", "TEXT", "name"),
				c("capacity", "INT", "capacity"), c("average_attendance", "INT", "average attendance"),
			}},
			{Name: "singer", NL: []string{"singers"}, PrimaryKey: []string{"singer_id"}, Columns: []schema.Column{
				c("singer_id", "INT"), c("name", "TEXT", "name"), c("age", "INT", "age"),
				c("country", "TEXT", "country"), c("song_name", "TEXT", "song name"),
				c("song_release_year", "TEXT", "song release year"),
			}},
			{Name: "concert", NL: []string{"concerts"}, PrimaryKey: []string{"concert_id"},
				ForeignKeys: []schema.ForeignKey{fk("stadium_id", "stadium", "stadium_id")},
				Columns: []schema.Column{
					c("concert_id", "INT"), c("concert_name", "TEXT", "concert name"),
					c("theme", "TEXT", "theme"), c("stadium_id", "INT"), c("year", "INT", "year"),
				}},
		}},
		{Name: "pets", Tables: []schema.Table{
			{Name: "student", NL: []string{"students"}, PrimaryKey: []string{"student_id"}, Columns: []schema.Column{
				c("student_id", "INT"), c("name", "TEXT", "name"), c("age", "INT", "age"),
				c("major", "TEXT", "major"), c("city", "TEXT", "home city"),
			}},
			{Name: "pet", NL: []string{"pets"}, PrimaryKey: []string{"pet_id"},
				ForeignKeys: []schema.ForeignKey{fk("owner_id", "student", "student_id")},
				Columns: []schema.Column{
					c("pet_id", "INT"), c("owner_id", "INT"), c("pet_type", "TEXT", "pet type"),
					c("pet_age", "INT", "pet age"), c("weight", "REAL", "weight"),
				}},
		}},
		{Name: "flights", Tables: []schema.Table{
			{Name: "airline", NL: []string{"airlines"}, PrimaryKey: []string{"airline_id"}, Columns: []schema.Column{
				c("airline_id", "INT"), c("airline_name", "TEXT", "airline name"),
				c("country", "TEXT", "country"), c("fleet_size", "INT", "fleet size"),
			}},
			{Name: "airport", NL: []string{"airports"}, PrimaryKey: []string{"airport_id"}, Columns: []schema.Column{
				c("airport_id", "INT"), c("airport_name", "TEXT", "airport name"),
				c("city", "TEXT", "city"), c("passenger_count", "INT", "passenger count"),
			}},
			{Name: "flight", NL: []string{"flights"}, PrimaryKey: []string{"flight_id"},
				ForeignKeys: []schema.ForeignKey{fk("airline_id", "airline", "airline_id"), fk("origin_id", "airport", "airport_id")},
				Columns: []schema.Column{
					c("flight_id", "INT"), c("airline_id", "INT"), c("origin_id", "INT"),
					c("distance", "INT", "distance"), c("departure_date", "DATE", "departure date"),
					c("price", "REAL", "ticket price"),
				}},
		}},
		{Name: "world", Tables: []schema.Table{
			{Name: "country", NL: []string{"countries"}, PrimaryKey: []string{"country_id"}, Columns: []schema.Column{
				c("country_id", "INT"), c("country_name", "TEXT", "country name"),
				c("continent", "TEXT", "continent"), c("population", "INT", "population"),
				c("surface_area", "REAL", "surface area"), c("gnp", "REAL", "gnp"),
			}},
			{Name: "city", NL: []string{"cities"}, PrimaryKey: []string{"city_id"},
				ForeignKeys: []schema.ForeignKey{fk("country_id", "country", "country_id")},
				Columns: []schema.Column{
					c("city_id", "INT"), c("city_name", "TEXT", "city name"),
					c("country_id", "INT"), c("city_population", "INT", "city population"),
				}},
			{Name: "spoken_language", NL: []string{"spoken languages"}, PrimaryKey: []string{"language_id"},
				ForeignKeys: []schema.ForeignKey{fk("country_id", "country", "country_id")},
				Columns: []schema.Column{
					c("language_id", "INT"), c("country_id", "INT"),
					c("language", "TEXT", "language"), c("percentage", "REAL", "percentage of speakers"),
				}},
		}},
		{Name: "employees", Tables: []schema.Table{
			{Name: "department", NL: []string{"departments"}, PrimaryKey: []string{"department_id"}, Columns: []schema.Column{
				c("department_id", "INT"), c("department_name", "TEXT", "department name"),
				c("budget", "REAL", "budget"), c("location_city", "TEXT", "location city"),
			}},
			{Name: "employee", NL: []string{"employees"}, PrimaryKey: []string{"employee_id"},
				ForeignKeys: []schema.ForeignKey{fk("department_id", "department", "department_id")},
				Columns: []schema.Column{
					c("employee_id", "INT"), c("employee_name", "TEXT", "employee name"),
					c("department_id", "INT"), c("salary", "REAL", "salary"),
					c("hire_date", "DATE", "hire date"), c("job_title", "TEXT", "job title"),
				}},
		}},
		{Name: "orders", Tables: []schema.Table{
			{Name: "customer", NL: []string{"customers"}, PrimaryKey: []string{"customer_id"}, Columns: []schema.Column{
				c("customer_id", "INT"), c("customer_name", "TEXT", "customer name"),
				c("email", "TEXT", "email"), c("customer_city", "TEXT", "customer city"),
			}},
			{Name: "product", NL: []string{"products"}, PrimaryKey: []string{"product_id"}, Columns: []schema.Column{
				c("product_id", "INT"), c("product_name", "TEXT", "product name"),
				c("category", "TEXT", "category"), c("unit_price", "REAL", "unit price"),
				c("stock_quantity", "INT", "stock quantity"),
			}},
			{Name: "purchase_order", NL: []string{"orders"}, PrimaryKey: []string{"order_id"},
				ForeignKeys: []schema.ForeignKey{fk("customer_id", "customer", "customer_id"), fk("product_id", "product", "product_id")},
				Columns: []schema.Column{
					c("order_id", "INT"), c("customer_id", "INT"), c("product_id", "INT"),
					c("order_date", "DATE", "order date"), c("quantity", "INT", "quantity"),
					c("total_amount", "REAL", "total amount"),
				}},
		}},
		{Name: "courses", Tables: []schema.Table{
			{Name: "instructor", NL: []string{"instructors"}, PrimaryKey: []string{"instructor_id"}, Columns: []schema.Column{
				c("instructor_id", "INT"), c("instructor_name", "TEXT", "instructor name"),
				c("office_city", "TEXT", "office city"), c("years_experience", "INT", "years of experience"),
			}},
			{Name: "course", NL: []string{"courses"}, PrimaryKey: []string{"course_id"},
				ForeignKeys: []schema.ForeignKey{fk("instructor_id", "instructor", "instructor_id")},
				Columns: []schema.Column{
					c("course_id", "INT"), c("course_title", "TEXT", "course title"),
					c("instructor_id", "INT"), c("credits", "INT", "credits"),
					c("enrollment_count", "INT", "enrollment count"),
				}},
		}},
		{Name: "movies", Tables: []schema.Table{
			{Name: "director", NL: []string{"directors"}, PrimaryKey: []string{"director_id"}, Columns: []schema.Column{
				c("director_id", "INT"), c("director_name", "TEXT", "director name"),
				c("nationality", "TEXT", "nationality"), c("birth_year", "INT", "birth year"),
			}},
			{Name: "movie", NL: []string{"movies"}, PrimaryKey: []string{"movie_id"},
				ForeignKeys: []schema.ForeignKey{fk("director_id", "director", "director_id")},
				Columns: []schema.Column{
					c("movie_id", "INT"), c("movie_title", "TEXT", "movie title"),
					c("director_id", "INT"), c("release_year", "INT", "release year"),
					c("box_office", "REAL", "box office gross"), c("genre", "TEXT", "genre"),
				}},
		}},
		{Name: "hospital", Tables: []schema.Table{
			{Name: "doctor", NL: []string{"doctors"}, PrimaryKey: []string{"doctor_id"}, Columns: []schema.Column{
				c("doctor_id", "INT"), c("doctor_name", "TEXT", "doctor name"),
				c("specialty", "TEXT", "specialty"), c("years_practicing", "INT", "years practicing"),
			}},
			{Name: "patient", NL: []string{"patients"}, PrimaryKey: []string{"patient_id"}, Columns: []schema.Column{
				c("patient_id", "INT"), c("patient_name", "TEXT", "patient name"),
				c("patient_age", "INT", "patient age"), c("home_city", "TEXT", "home city"),
			}},
			{Name: "appointment", NL: []string{"appointments"}, PrimaryKey: []string{"appointment_id"},
				ForeignKeys: []schema.ForeignKey{fk("doctor_id", "doctor", "doctor_id"), fk("patient_id", "patient", "patient_id")},
				Columns: []schema.Column{
					c("appointment_id", "INT"), c("doctor_id", "INT"), c("patient_id", "INT"),
					c("appointment_date", "DATE", "appointment date"), c("fee", "REAL", "fee"),
				}},
		}},
		{Name: "library", Tables: []schema.Table{
			{Name: "author", NL: []string{"authors"}, PrimaryKey: []string{"author_id"}, Columns: []schema.Column{
				c("author_id", "INT"), c("author_name", "TEXT", "author name"),
				c("home_country", "TEXT", "home country"), c("books_written", "INT", "number of books written"),
			}},
			{Name: "book", NL: []string{"books"}, PrimaryKey: []string{"book_id"},
				ForeignKeys: []schema.ForeignKey{fk("author_id", "author", "author_id")},
				Columns: []schema.Column{
					c("book_id", "INT"), c("book_title", "TEXT", "book title"),
					c("author_id", "INT"), c("publish_year", "INT", "publish year"),
					c("page_count", "INT", "page count"),
				}},
			{Name: "loan", NL: []string{"loans"}, PrimaryKey: []string{"loan_id"},
				ForeignKeys: []schema.ForeignKey{fk("book_id", "book", "book_id")},
				Columns: []schema.Column{
					c("loan_id", "INT"), c("book_id", "INT"),
					c("loan_date", "DATE", "loan date"), c("days_kept", "INT", "days kept"),
				}},
		}},
		{Name: "restaurants", Tables: []schema.Table{
			{Name: "restaurant", NL: []string{"restaurants"}, PrimaryKey: []string{"restaurant_id"}, Columns: []schema.Column{
				c("restaurant_id", "INT"), c("restaurant_name", "TEXT", "restaurant name"),
				c("cuisine", "TEXT", "cuisine"), c("rest_city", "TEXT", "city"),
				c("seating_capacity", "INT", "seating capacity"),
			}},
			{Name: "dish", NL: []string{"dishes"}, PrimaryKey: []string{"dish_id"},
				ForeignKeys: []schema.ForeignKey{fk("restaurant_id", "restaurant", "restaurant_id")},
				Columns: []schema.Column{
					c("dish_id", "INT"), c("dish_name", "TEXT", "dish name"),
					c("restaurant_id", "INT"), c("dish_price", "REAL", "price"),
					c("calories", "INT", "calories"),
				}},
		}},
		{Name: "museums", Tables: []schema.Table{
			{Name: "museum", NL: []string{"museums"}, PrimaryKey: []string{"museum_id"}, Columns: []schema.Column{
				c("museum_id", "INT"), c("museum_name", "TEXT", "museum name"),
				c("museum_city", "TEXT", "city"), c("annual_visitors", "INT", "annual visitors"),
				c("founded_year", "INT", "founded year"),
			}},
			{Name: "exhibit", NL: []string{"exhibits"}, PrimaryKey: []string{"exhibit_id"},
				ForeignKeys: []schema.ForeignKey{fk("museum_id", "museum", "museum_id")},
				Columns: []schema.Column{
					c("exhibit_id", "INT"), c("exhibit_title", "TEXT", "exhibit title"),
					c("museum_id", "INT"), c("artifact_count", "INT", "artifact count"),
					c("exhibit_theme", "TEXT", "theme"),
				}},
		}},
		{Name: "soccer", Tables: []schema.Table{
			{Name: "team", NL: []string{"teams"}, PrimaryKey: []string{"team_id"}, Columns: []schema.Column{
				c("team_id", "INT"), c("team_name", "TEXT", "team name"),
				c("home_city", "TEXT", "home city"), c("points", "INT", "points"),
				c("founded_year", "INT", "founded year"),
			}},
			{Name: "player", NL: []string{"players"}, PrimaryKey: []string{"player_id"},
				ForeignKeys: []schema.ForeignKey{fk("team_id", "team", "team_id")},
				Columns: []schema.Column{
					c("player_id", "INT"), c("player_name", "TEXT", "player name"),
					c("team_id", "INT"), c("goals_scored", "INT", "goals scored"),
					c("player_age", "INT", "age"), c("position_played", "TEXT", "position"),
				}},
		}},
		{Name: "bikes", Tables: []schema.Table{
			{Name: "station", NL: []string{"stations"}, PrimaryKey: []string{"station_id"}, Columns: []schema.Column{
				c("station_id", "INT"), c("station_name", "TEXT", "station name"),
				c("dock_count", "INT", "dock count"), c("station_city", "TEXT", "city"),
			}},
			{Name: "trip", NL: []string{"trips"}, PrimaryKey: []string{"trip_id"},
				ForeignKeys: []schema.ForeignKey{fk("start_station_id", "station", "station_id")},
				Columns: []schema.Column{
					c("trip_id", "INT"), c("start_station_id", "INT"),
					c("duration_minutes", "INT", "duration in minutes"),
					c("trip_date", "DATE", "trip date"),
				}},
		}},
		{Name: "music_store", Tables: []schema.Table{
			{Name: "album", NL: []string{"albums"}, PrimaryKey: []string{"album_id"}, Columns: []schema.Column{
				c("album_id", "INT"), c("album_title", "TEXT", "album title"),
				c("artist_name", "TEXT", "artist name"), c("album_year", "INT", "album year"),
				c("list_price", "REAL", "list price"),
			}},
			{Name: "track", NL: []string{"tracks"}, PrimaryKey: []string{"track_id"},
				ForeignKeys: []schema.ForeignKey{fk("album_id", "album", "album_id")},
				Columns: []schema.Column{
					c("track_id", "INT"), c("track_title", "TEXT", "track title"),
					c("album_id", "INT"), c("duration_seconds", "INT", "duration in seconds"),
					c("play_count", "INT", "play count"),
				}},
		}},
		{Name: "real_estate", Tables: []schema.Table{
			{Name: "agent", NL: []string{"agents"}, PrimaryKey: []string{"agent_id"}, Columns: []schema.Column{
				c("agent_id", "INT"), c("agent_name", "TEXT", "agent name"),
				c("agency_city", "TEXT", "agency city"), c("commission_rate", "REAL", "commission rate"),
			}},
			{Name: "property", NL: []string{"properties"}, PrimaryKey: []string{"property_id"},
				ForeignKeys: []schema.ForeignKey{fk("agent_id", "agent", "agent_id")},
				Columns: []schema.Column{
					c("property_id", "INT"), c("street_address", "TEXT", "street address"),
					c("agent_id", "INT"), c("asking_price", "REAL", "asking price"),
					c("bedroom_count", "INT", "number of bedrooms"), c("listing_date", "DATE", "listing date"),
				}},
		}},
		{Name: "vehicles", Tables: []schema.Table{
			{Name: "maker", NL: []string{"car makers"}, PrimaryKey: []string{"maker_id"}, Columns: []schema.Column{
				c("maker_id", "INT"), c("maker_name", "TEXT", "maker name"),
				c("headquarters_country", "TEXT", "headquarters country"),
				c("annual_production", "INT", "annual production"),
			}},
			{Name: "model", NL: []string{"car models"}, PrimaryKey: []string{"model_id"},
				ForeignKeys: []schema.ForeignKey{fk("maker_id", "maker", "maker_id")},
				Columns: []schema.Column{
					c("model_id", "INT"), c("model_name", "TEXT", "model name"),
					c("maker_id", "INT"), c("horsepower", "INT", "horsepower"),
					c("mpg", "REAL", "fuel economy"), c("model_year", "INT", "model year"),
				}},
		}},
		{Name: "weather", Tables: []schema.Table{
			{Name: "weather_station", NL: []string{"weather stations"}, PrimaryKey: []string{"station_id"}, Columns: []schema.Column{
				c("station_id", "INT"), c("station_label", "TEXT", "station label"),
				c("region", "TEXT", "region"), c("elevation", "INT", "elevation"),
			}},
			{Name: "reading", NL: []string{"readings"}, PrimaryKey: []string{"reading_id"},
				ForeignKeys: []schema.ForeignKey{fk("station_id", "weather_station", "station_id")},
				Columns: []schema.Column{
					c("reading_id", "INT"), c("station_id", "INT"),
					c("reading_date", "DATE", "reading date"), c("temperature", "REAL", "temperature"),
					c("rainfall", "REAL", "rainfall"),
				}},
		}},
		{Name: "network", Tables: []schema.Table{
			{Name: "user_account", NL: []string{"users"}, PrimaryKey: []string{"user_id"}, Columns: []schema.Column{
				c("user_id", "INT"), c("handle", "TEXT", "handle"),
				c("follower_count", "INT", "follower count"), c("join_year", "INT", "join year"),
				c("account_city", "TEXT", "city"),
			}},
			{Name: "post", NL: []string{"posts"}, PrimaryKey: []string{"post_id"},
				ForeignKeys: []schema.ForeignKey{fk("user_id", "user_account", "user_id")},
				Columns: []schema.Column{
					c("post_id", "INT"), c("user_id", "INT"),
					c("like_count", "INT", "like count"), c("post_date", "DATE", "post date"),
					c("topic", "TEXT", "topic"),
				}},
		}},
		{Name: "shipping", Tables: []schema.Table{
			{Name: "carrier", NL: []string{"carriers"}, PrimaryKey: []string{"carrier_id"}, Columns: []schema.Column{
				c("carrier_id", "INT"), c("carrier_name", "TEXT", "carrier name"),
				c("base_country", "TEXT", "base country"), c("truck_count", "INT", "truck count"),
			}},
			{Name: "warehouse", NL: []string{"warehouses"}, PrimaryKey: []string{"warehouse_id"}, Columns: []schema.Column{
				c("warehouse_id", "INT"), c("warehouse_city", "TEXT", "city"),
				c("storage_capacity", "INT", "storage capacity"),
			}},
			{Name: "shipment", NL: []string{"shipments"}, PrimaryKey: []string{"shipment_id"},
				ForeignKeys: []schema.ForeignKey{fk("carrier_id", "carrier", "carrier_id"), fk("warehouse_id", "warehouse", "warehouse_id")},
				Columns: []schema.Column{
					c("shipment_id", "INT"), c("carrier_id", "INT"), c("warehouse_id", "INT"),
					c("ship_date", "DATE", "ship date"), c("weight_kg", "REAL", "weight in kilograms"),
					c("declared_value", "REAL", "declared value"),
				}},
		}},
	}
}
