package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"fisql/internal/engine"
	"fisql/internal/schema"
	"fisql/internal/sqlast"
	"fisql/internal/sqlparse"
)

// Gen carries the state shared by one database's example generation.
type Gen struct {
	DS     *Dataset
	Schema *schema.Schema
	DB     *engine.Database
	Ex     *engine.Executor
	Rng    *rand.Rand
}

// NewGen prepares a generator for one schema: registers it with the dataset
// and returns the generator (the database is still empty).
func NewGen(ds *Dataset, s *schema.Schema, rng *rand.Rand) (*Gen, error) {
	db, err := ds.AddSchema(s)
	if err != nil {
		return nil, err
	}
	return &Gen{DS: ds, Schema: s, DB: db, Ex: engine.NewExecutor(db), Rng: rng}, nil
}

// ----------------------------------------------------------------------------
// Data population

// Populate fills every table in the schema with roughly n rows of plausible
// data (the exact count varies per table so that row-count statistics
// distinguish tables). Values derive from column names. Foreign keys sample
// from the parent table's rows, so population follows schema order (parents
// must precede children).
func (g *Gen) Populate(n int) error {
	for ti := range g.Schema.Tables {
		st := &g.Schema.Tables[ti]
		t, ok := g.DB.Table(st.Name)
		if !ok {
			return fmt.Errorf("table %s missing from database", st.Name)
		}
		rows := n/2 + 1 + g.Rng.Intn(n)
		for r := 0; r < rows; r++ {
			row := make([]engine.Value, len(st.Columns))
			for ci, c := range st.Columns {
				v, err := g.columnValue(st, c, r)
				if err != nil {
					return err
				}
				row[ci] = v
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return nil
}

// ScaleRows grows every populated table to mult times its current row count
// by appending freshly generated rows, for benchmarking the engine on much
// larger databases than the examples need. It runs strictly after the base
// population (and example generation) so the 1x corpus stays byte-identical:
// scaling only appends. Primary keys continue the existing sequence and
// foreign keys sample the parent's already-scaled rows, so population order
// (parents before children) still holds referential integrity. Generation is
// deterministic for a fixed Rng seed and multiplier.
func (g *Gen) ScaleRows(mult int) error {
	if mult <= 1 {
		return nil
	}
	for ti := range g.Schema.Tables {
		st := &g.Schema.Tables[ti]
		t, ok := g.DB.Table(st.Name)
		if !ok {
			return fmt.Errorf("table %s missing from database", st.Name)
		}
		base := len(t.Rows)
		for r := base; r < base*mult; r++ {
			row := make([]engine.Value, len(st.Columns))
			for ci, c := range st.Columns {
				v, err := g.columnValue(st, c, r)
				if err != nil {
					return err
				}
				row[ci] = v
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return nil
}

func (g *Gen) columnValue(t *schema.Table, c schema.Column, rowIdx int) (engine.Value, error) {
	name := strings.ToLower(c.Name)
	// Primary-key ids are sequential; foreign keys sample the parent.
	if len(t.PrimaryKey) == 1 && strings.EqualFold(t.PrimaryKey[0], c.Name) {
		return engine.Int(int64(rowIdx + 1)), nil
	}
	for _, fk := range t.ForeignKeys {
		if strings.EqualFold(fk.Column, c.Name) {
			parent, ok := g.DB.Table(fk.RefTable)
			if !ok || len(parent.Rows) == 0 {
				return engine.Null(), nil
			}
			pi := parent.ColumnIndex(fk.RefColumn)
			if pi < 0 {
				return engine.Null(), nil
			}
			return parent.Rows[g.Rng.Intn(len(parent.Rows))][pi], nil
		}
	}
	typ := engine.TypeFromSQL(c.Type)
	pick := func(pool []string) engine.Value { return engine.Text(pool[g.Rng.Intn(len(pool))]) }
	switch {
	case strings.Contains(name, "email"):
		return engine.Text(strings.ToLower(firstNames[g.Rng.Intn(len(firstNames))]) + "@example.com"), nil
	case strings.Contains(name, "country"):
		return pick(countries), nil
	case strings.Contains(name, "city") || strings.Contains(name, "location"):
		return pick(cities), nil
	case strings.Contains(name, "theme"):
		return pick(themes), nil
	case strings.Contains(name, "genre") || strings.Contains(name, "category") || strings.Contains(name, "type"):
		return pick(genres), nil
	case strings.Contains(name, "status") || strings.Contains(name, "state"):
		return pick(statuses), nil
	case strings.Contains(name, "month"):
		return pick(months), nil
	case strings.Contains(name, "time") || strings.Contains(name, "date"):
		// ISO dates across 2022-2024 so month/year filters bite.
		y := 2022 + g.Rng.Intn(3)
		m := 1 + g.Rng.Intn(12)
		d := 1 + g.Rng.Intn(28)
		return engine.Text(fmt.Sprintf("%04d-%02d-%02d", y, m, d)), nil
	case strings.Contains(name, "year"):
		y := 1990 + g.Rng.Intn(35)
		if typ == engine.TypeInt {
			return engine.Int(int64(y)), nil
		}
		return engine.Text(fmt.Sprintf("%d", y)), nil
	case strings.Contains(name, "age"):
		return engine.Int(int64(18 + g.Rng.Intn(60))), nil
	case strings.Contains(name, "name") || strings.Contains(name, "title"):
		if typ == engine.TypeText {
			return engine.Text(firstNames[g.Rng.Intn(len(firstNames))] + " " + lastNames[g.Rng.Intn(len(lastNames))]), nil
		}
	case strings.Contains(name, "description") || strings.Contains(name, "song"):
		return pick(wordPool), nil
	}
	switch typ {
	case engine.TypeInt:
		return engine.Int(int64(1 + g.Rng.Intn(10000))), nil
	case engine.TypeFloat:
		return engine.Float(float64(g.Rng.Intn(100000)) / 100.0), nil
	case engine.TypeBool:
		return engine.Bool(g.Rng.Intn(2) == 0), nil
	default:
		return pick(wordPool), nil
	}
}

// SampleValue returns a value present in the named column's data, as SQL
// literal text, plus its engine value. Returns ok=false for empty tables.
func (g *Gen) SampleValue(table, column string) (text string, v engine.Value, ok bool) {
	t, found := g.DB.Table(table)
	if !found || len(t.Rows) == 0 {
		return "", engine.Value{}, false
	}
	ci := t.ColumnIndex(column)
	if ci < 0 {
		return "", engine.Value{}, false
	}
	v = t.Rows[g.Rng.Intn(len(t.Rows))][ci]
	if v.IsNull() {
		return "", engine.Value{}, false
	}
	return v.String(), v, true
}

// ----------------------------------------------------------------------------
// Candidates and perturbations

// Perturb describes one way to plant a trap in a candidate's gold query.
type Perturb struct {
	Trap  Trap
	Apply func(*sqlast.SelectStmt)
}

// Hint tags candidates that only specific quota slots may consume.
type Hint int

// Candidate hints.
const (
	// HintNone marks ordinary candidates.
	HintNone Hint = iota
	// HintGroundingHard marks candidates built for grounding-hard traps
	// (two plausible edit sites, e.g. the FilterTwo template).
	HintGroundingHard
)

// Candidate is a generated example before trap assignment.
type Candidate struct {
	DB       string
	Question string
	Gold     *sqlast.SelectStmt
	Perturbs []Perturb
	// Paraphrase is an alternative phrasing of the question used to build
	// covering demonstrations (it contains the same trap phrases).
	Paraphrase string
	Hint       Hint
}

// execDiffers reports whether the two queries both run and produce different
// results — the soundness condition for a planted trap.
func (g *Gen) execDiffers(gold, wrong *sqlast.SelectStmt) bool {
	rg, err := g.Ex.Select(gold)
	if err != nil {
		return false
	}
	rw, err := g.Ex.Select(wrong)
	if err != nil {
		return false
	}
	return !engine.EqualResults(rg, rw)
}

// execOK reports whether the query runs at all.
func (g *Gen) execOK(sel *sqlast.SelectStmt) bool {
	_, err := g.Ex.Select(sel)
	return err == nil
}

// Realize turns a candidate plus a chosen set of perturbations into an
// Example, verifying every variant executes and differs from gold. Returns
// nil if verification fails (the caller then tries other perturbations or
// leaves the candidate untrapped).
func (g *Gen) Realize(c *Candidate, chosen []Perturb) *Example {
	if !g.execOK(c.Gold) {
		return nil
	}
	e := &Example{
		DB:       c.DB,
		Question: c.Question,
		Gold:     sqlast.Print(c.Gold),
	}
	for _, p := range chosen {
		e.Traps = append(e.Traps, p.Trap)
	}
	if len(chosen) > 0 {
		e.Variants = make(map[uint8]string)
		full := uint8(1<<len(chosen)) - 1
		for mask := uint8(1); mask <= full; mask++ {
			wrong := sqlast.CloneSelect(c.Gold)
			for i, p := range chosen {
				if mask&(1<<i) != 0 {
					p.Apply(wrong)
				}
			}
			if !g.execDiffers(c.Gold, wrong) {
				return nil
			}
			e.Variants[mask] = sqlast.Print(wrong)
		}
		// The example's gold must also be verifiably *fixed* per trap, so
		// the annotator's structural FixedIn checks agree with reality.
		goldSel := sqlast.CloneSelect(c.Gold)
		for i := range chosen {
			if !e.FixedIn(i, goldSel) {
				return nil
			}
		}
		// And every trap must be detectably unfixed in the full variant.
		if wrongSel := mustParse(e.Variants[full]); wrongSel != nil {
			for i := range chosen {
				if e.FixedIn(i, wrongSel) {
					return nil
				}
			}
		}
	}
	return e
}

func mustParse(sql string) *sqlast.SelectStmt {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return nil
	}
	return sel
}

// ----------------------------------------------------------------------------
// Demonstration helpers

// CoverDemo builds a demonstration that disambiguates the given example's
// traps: its question is the candidate's paraphrase (sharing the trap
// phrases) and its SQL is the gold query.
func CoverDemo(e *Example, paraphrase string) Demo {
	var phrases []string
	for _, t := range e.Traps {
		phrases = append(phrases, t.Phrase)
	}
	return Demo{DB: e.DB, Question: paraphrase, SQL: e.Gold, Phrases: phrases}
}

// ContainsPhrase reports whether the normalized haystack contains the
// normalized phrase. This is the single definition of "a demonstration
// covers a trap" used by both dataset construction and the simulated model,
// so the two can never disagree.
func ContainsPhrase(haystack, phrase string) bool {
	if phrase == "" {
		return false
	}
	return strings.Contains(schema.Normalize(haystack), schema.Normalize(phrase))
}
