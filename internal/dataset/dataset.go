// Package dataset defines the benchmark model shared by the SPIDER-like and
// Experience-Platform corpora: examples with gold SQL, planted ambiguity
// traps, and the demonstration pools used for retrieval-augmented prompting.
//
// A *trap* is a concrete misunderstanding planted in an example: the naive
// schema-linking lexicon resolves some question phrase incorrectly, so a
// model without disambiguating context generates a wrong query (the trap's
// perturbed SQL). Traps carry everything downstream stages need — the
// feedback operation that corrects them, the clause they live in, and the
// annotator-behaviour flags that drive the paper's residual error analysis.
package dataset

import (
	"fmt"
	"strings"

	"fisql/internal/engine"
	"fisql/internal/schema"
	"fisql/internal/sqlast"
	"fisql/internal/sqlparse"
)

// Op is the feedback operation taxonomy of the paper (Table 1).
type Op int

// Feedback operations.
const (
	OpAdd Op = iota
	OpRemove
	OpEdit
)

// String names the operation as the paper does.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "Add"
	case OpRemove:
		return "Remove"
	case OpEdit:
		return "Edit"
	}
	return "?op?"
}

// ParseOp parses an operation name (case-insensitive).
func ParseOp(s string) (Op, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "add":
		return OpAdd, true
	case "remove":
		return OpRemove, true
	case "edit":
		return OpEdit, true
	}
	return 0, false
}

// TrapKind enumerates the concrete misunderstanding patterns the generators
// plant. Each kind maps onto one feedback operation.
type TrapKind int

// Trap kinds.
const (
	// WrongLiteral: a literal in WHERE is wrong (e.g. year 2023 vs 2024).
	WrongLiteral TrapKind = iota
	// WrongColumn: a projected column is wrong (singer name vs song name).
	WrongColumn
	// WrongAggregate: the aggregate function is wrong (COUNT vs SUM ...).
	WrongAggregate
	// WrongTable: the FROM table is wrong (datasets vs audiences).
	WrongTable
	// MissingOrderBy: the gold ORDER BY was omitted.
	MissingOrderBy
	// MissingFilter: a gold WHERE conjunct was omitted.
	MissingFilter
	// MissingDistinct: the gold DISTINCT was omitted.
	MissingDistinct
	// ExtraColumn: a spurious column was projected.
	ExtraColumn
	// ExtraFilter: a spurious WHERE conjunct was added.
	ExtraFilter
)

// String names the kind.
func (k TrapKind) String() string {
	switch k {
	case WrongLiteral:
		return "wrong-literal"
	case WrongColumn:
		return "wrong-column"
	case WrongAggregate:
		return "wrong-aggregate"
	case WrongTable:
		return "wrong-table"
	case MissingOrderBy:
		return "missing-order-by"
	case MissingFilter:
		return "missing-filter"
	case MissingDistinct:
		return "missing-distinct"
	case ExtraColumn:
		return "extra-column"
	case ExtraFilter:
		return "extra-filter"
	}
	return "?trap?"
}

// Op returns the feedback operation that corrects this kind of trap.
func (k TrapKind) Op() Op {
	switch k {
	case WrongLiteral, WrongColumn, WrongAggregate, WrongTable:
		return OpEdit
	case MissingOrderBy, MissingFilter, MissingDistinct:
		return OpAdd
	default:
		return OpRemove
	}
}

// Trap is one planted misunderstanding.
type Trap struct {
	Kind TrapKind
	// Phrase is the ambiguous question phrase that triggers the trap. A
	// prompt containing a demonstration with this phrase disambiguates it.
	Phrase string
	// Clause locates the error in the printed SQL (for highlights).
	Clause sqlast.Clause
	// Payload, interpreted per kind:
	//   WrongLiteral:  Old/New are the literal texts (wrong/correct).
	//   WrongColumn:   Old/New are column names; Table is their table.
	//   WrongAggregate:Old/New are aggregate function names.
	//   WrongTable:    Old/New are table names.
	//   MissingOrderBy:Column is the order key, New is "ASC" or "DESC".
	//   MissingFilter: Column/New are the filter column and value text.
	//   MissingDistinct: no payload.
	//   ExtraColumn:   Column is the spurious projected column.
	//   ExtraFilter:   Column is the spurious filter column.
	Old, New string
	Column   string
	Table    string

	// DemoCovered marks traps whose phrase is covered by the demonstration
	// pool, so retrieval-augmented prompting avoids them.
	DemoCovered bool

	// Annotator behaviour flags (paper §4.2 error analysis):
	// Misaligned — the user's feedback describes a change that does not
	// actually correct the query (cause (c)).
	Misaligned bool
	// Vague — the feedback carries no actionable edit (cause (b)).
	Vague bool
	// AmbiguousOp — the feedback's operation type is misread by keyword
	// heuristics but correctly classified by the few-shot router.
	AmbiguousOp bool
	// GroundingHard — the SQL contains multiple plausible edit sites, so
	// un-grounded repair picks the wrong one; a highlight resolves it.
	GroundingHard bool
	// RewriteFixable — folding the feedback into the question text
	// disambiguates the original phrase, so the Query-Rewrite baseline
	// regenerates correctly.
	RewriteFixable bool

	// DecoyColumn/DecoyValue parameterize misaligned feedback: the
	// annotator asks for a filter on this (irrelevant) column instead of
	// describing the real fix.
	DecoyColumn string
	DecoyValue  string
}

// Example is one benchmark item.
type Example struct {
	ID       string
	DB       string
	Question string
	// Gold is the canonical gold SQL.
	Gold string
	// Traps lists planted misunderstandings (empty means the naive model
	// answers correctly). At most two traps per example.
	Traps []Trap
	// Variants maps a bitmask of *unfixed* traps to the SQL a model in
	// that state produces. Variants[0] == Gold; the full mask is the
	// initial naive generation.
	Variants map[uint8]string
	// Annotatable marks errors for which the simulated annotator can
	// express feedback (the paper annotated 101 of 243 SPIDER errors).
	Annotatable bool
}

// FullMask returns the bitmask with every trap unfixed.
func (e *Example) FullMask() uint8 {
	return uint8(1<<len(e.Traps)) - 1
}

// WrongSQL returns the naive generation (all traps unfixed); for untrapped
// examples it is the gold SQL.
func (e *Example) WrongSQL() string {
	if len(e.Traps) == 0 {
		return e.Gold
	}
	return e.Variants[e.FullMask()]
}

// SQLFor returns the SQL with the given set of unfixed traps.
func (e *Example) SQLFor(mask uint8) (string, bool) {
	if mask == 0 {
		return e.Gold, true
	}
	s, ok := e.Variants[mask]
	return s, ok
}

// FixedIn reports whether trap i appears corrected in the given SQL. The
// check is structural so it works even on SQL the repair engine produced
// rather than a stored variant.
func (e *Example) FixedIn(i int, sel *sqlast.SelectStmt) bool {
	if sel == nil {
		return false
	}
	t := e.Traps[i]
	text := sqlast.Print(sel)
	switch t.Kind {
	case WrongLiteral:
		// Substring semantics so a year trap ('2023-01-01' and
		// '2023-02-01' both wrong) reads as one logical edit: Old="2023",
		// New="2024". Realize verifies the check is unambiguous for the
		// example before accepting the trap.
		return !strings.Contains(text, t.Old) && strings.Contains(text, t.New)
	case WrongColumn:
		return selectsColumn(sel, t.New) && !selectsColumn(sel, t.Old)
	case WrongAggregate:
		return usesAggregate(sel, t.New) && !usesAggregate(sel, t.Old)
	case WrongTable:
		return usesTable(sel, t.New) && !usesTable(sel, t.Old)
	case MissingOrderBy:
		for _, ob := range sel.OrderBy {
			if cr, ok := ob.Expr.(*sqlast.ColumnRef); ok && strings.EqualFold(cr.Column, t.Column) {
				return ob.Desc == (t.New == "DESC")
			}
		}
		return false
	case MissingFilter:
		return strings.Contains(text, t.New) && filtersColumn(sel, t.Column)
	case MissingDistinct:
		return sel.Distinct
	case ExtraColumn:
		return !selectsColumn(sel, t.Column)
	case ExtraFilter:
		return !filtersColumn(sel, t.Column)
	}
	return false
}

// UnfixedMask computes which traps remain unfixed in the given SQL text.
func (e *Example) UnfixedMask(sql string) uint8 {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return e.FullMask()
	}
	var mask uint8
	for i := range e.Traps {
		if !e.FixedIn(i, sel) {
			mask |= 1 << i
		}
	}
	return mask
}

func selectsColumn(sel *sqlast.SelectStmt, col string) bool {
	for _, it := range sel.Items {
		match := false
		sqlast.Walk(it.Expr, func(x sqlast.Expr) bool {
			if cr, ok := x.(*sqlast.ColumnRef); ok && strings.EqualFold(cr.Column, col) {
				match = true
				return false
			}
			return true
		})
		if match {
			return true
		}
	}
	return false
}

func usesAggregate(sel *sqlast.SelectStmt, name string) bool {
	found := false
	for _, it := range sel.Items {
		sqlast.Walk(it.Expr, func(x sqlast.Expr) bool {
			if fc, ok := x.(*sqlast.FuncCall); ok && strings.EqualFold(fc.Name, name) {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

func usesTable(sel *sqlast.SelectStmt, name string) bool {
	if sel.From == nil {
		return false
	}
	if strings.EqualFold(sel.From.First.Name, name) {
		return true
	}
	for _, j := range sel.From.Joins {
		if strings.EqualFold(j.Source.Name, name) {
			return true
		}
	}
	return false
}

func filtersColumn(sel *sqlast.SelectStmt, col string) bool {
	found := false
	sqlast.Walk(sel.Where, func(x sqlast.Expr) bool {
		if cr, ok := x.(*sqlast.ColumnRef); ok && strings.EqualFold(cr.Column, col) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Demo is one (question, SQL) demonstration pair in the retrieval pool.
type Demo struct {
	DB       string
	Question string
	SQL      string
	// Phrases lists trap phrases this demonstration disambiguates.
	Phrases []string
}

// Dataset is a complete benchmark: schemas, loaded databases, NL lexicons,
// examples and the demonstration pool.
type Dataset struct {
	Name     string
	Schemas  map[string]*schema.Schema
	DBs      map[string]*engine.Database
	Lexicons map[string]*schema.Lexicon
	Examples []*Example
	Demos    []Demo

	byQuestion map[string]*Example
}

// New creates an empty dataset.
func New(name string) *Dataset {
	return &Dataset{
		Name:       name,
		Schemas:    make(map[string]*schema.Schema),
		DBs:        make(map[string]*engine.Database),
		Lexicons:   make(map[string]*schema.Lexicon),
		byQuestion: make(map[string]*Example),
	}
}

// AddSchema registers a schema, builds its lexicon and creates its (empty)
// database.
func (d *Dataset) AddSchema(s *schema.Schema) (*engine.Database, error) {
	if _, dup := d.Schemas[s.Name]; dup {
		return nil, fmt.Errorf("duplicate schema %q", s.Name)
	}
	db := engine.NewDatabase(s.Name)
	if err := db.LoadScript(s.DDL()); err != nil {
		return nil, fmt.Errorf("schema %s: %w", s.Name, err)
	}
	d.Schemas[s.Name] = s
	d.DBs[s.Name] = db
	d.Lexicons[s.Name] = schema.NewLexicon(s)
	return db, nil
}

// AddExample registers an example.
func (d *Dataset) AddExample(e *Example) {
	d.Examples = append(d.Examples, e)
	d.byQuestion[schema.Normalize(e.Question)] = e
}

// ExampleByQuestion finds an example by its (normalized) question text.
func (d *Dataset) ExampleByQuestion(q string) (*Example, bool) {
	e, ok := d.byQuestion[schema.Normalize(q)]
	return e, ok
}

// Errors returns the examples the naive model gets wrong (those with traps).
func (d *Dataset) Errors() []*Example {
	var out []*Example
	for _, e := range d.Examples {
		if len(e.Traps) > 0 {
			out = append(out, e)
		}
	}
	return out
}

// AnnotatedErrors returns trapped examples with annotatable feedback — the
// paper's evaluation population.
func (d *Dataset) AnnotatedErrors() []*Example {
	var out []*Example
	for _, e := range d.Errors() {
		if e.Annotatable {
			out = append(out, e)
		}
	}
	return out
}
