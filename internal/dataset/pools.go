package dataset

// Value pools for deterministic data population. The generators index into
// these with a seeded RNG, so the same seed always yields the same corpus.

var firstNames = []string{
	"Joe", "Timbaland", "Justin", "Rose", "John", "Maria", "Wei", "Aisha",
	"Carlos", "Elena", "Pierre", "Yuki", "Omar", "Ingrid", "Ravi", "Sofia",
	"Liam", "Nina", "Hugo", "Priya", "Mateo", "Zara", "Felix", "Amara",
	"Oscar", "Lena", "Diego", "Hana", "Viktor", "Chloe", "Ivan", "Leila",
}

var lastNames = []string{
	"Sharp", "Brown", "White", "Nizinik", "King", "Garcia", "Chen", "Okafor",
	"Martinez", "Petrov", "Dubois", "Tanaka", "Hassan", "Larsen", "Patel",
	"Rossi", "Murphy", "Kowalski", "Silva", "Novak", "Schmidt", "Ali",
	"Johansson", "Moreau", "Santos", "Weber", "Nakamura", "Costa", "Byrne",
}

var countries = []string{
	"France", "United States", "Netherlands", "Japan", "Brazil", "Germany",
	"India", "Canada", "Spain", "Nigeria", "Australia", "Mexico", "Sweden",
	"South Korea", "Italy", "Egypt", "Argentina", "Poland", "Kenya", "Norway",
}

var cities = []string{
	"Paris", "New York", "Amsterdam", "Tokyo", "Sao Paulo", "Berlin",
	"Mumbai", "Toronto", "Madrid", "Lagos", "Sydney", "Mexico City",
	"Stockholm", "Seoul", "Rome", "Cairo", "Buenos Aires", "Warsaw",
	"Nairobi", "Oslo", "Lyon", "Osaka", "Munich", "Chicago", "Valencia",
}

var wordPool = []string{
	"Aurora", "Breeze", "Cascade", "Drift", "Ember", "Fable", "Glimmer",
	"Harbor", "Inlet", "Juniper", "Keystone", "Lumen", "Meadow", "Nimbus",
	"Opal", "Prairie", "Quartz", "Ridge", "Summit", "Thicket", "Umber",
	"Vista", "Willow", "Zephyr", "Beacon", "Cinder", "Dune", "Echo",
}

var themes = []string{
	"Free choice", "Bleeding Love", "Wide Awake", "Happy Tonight",
	"Party All Night", "Midnight Run", "Golden Hour", "Neon Lights",
	"Acoustic Set", "Retro Wave",
}

var genres = []string{
	"Pop", "Rock", "Jazz", "Classical", "Hip Hop", "Electronic", "Folk",
	"Country", "Blues", "Reggae",
}

var statuses = []string{"active", "inactive", "draft", "archived"}

var months = []string{
	"January", "February", "March", "April", "May", "June", "July",
	"August", "September", "October", "November", "December",
}

// MonthNumber returns the 1-based month number for a month name, or 0.
func MonthNumber(name string) int {
	for i, m := range months {
		if m == name {
			return i + 1
		}
	}
	return 0
}

// Months exposes the month-name pool.
func Months() []string { return months }
