package dataset

import (
	"fmt"
	"strings"

	"fisql/internal/engine"
	"fisql/internal/schema"
	"fisql/internal/sqlast"
)

// Question templates. Each constructor builds a Candidate: a question, its
// gold query, a paraphrase for covering demonstrations, and the set of
// perturbations (traps) that can be planted in it. Constructors return nil
// when the schema/data cannot support the template.

func colRef(table, name string) *sqlast.ColumnRef {
	return &sqlast.ColumnRef{Table: table, Column: name}
}

func bareCol(name string) *sqlast.ColumnRef { return &sqlast.ColumnRef{Column: name} }

func litFor(v engine.Value) *sqlast.Literal {
	switch v.T {
	case engine.TypeInt, engine.TypeFloat:
		return sqlast.Num(v.String())
	case engine.TypeBool:
		return sqlast.Bool(v.B)
	default:
		return sqlast.Str(v.String())
	}
}

// quoteVal renders a value the way questions mention it.
func quoteVal(v engine.Value) string {
	switch v.T {
	case engine.TypeInt, engine.TypeFloat:
		return v.String()
	default:
		return "'" + v.String() + "'"
	}
}

func from(table string) *sqlast.FromClause {
	return &sqlast.FromClause{First: sqlast.TableSource{Name: table}}
}

func phraseOf(nl []string, fallback string) string {
	if len(nl) > 0 {
		return nl[0]
	}
	return fallback
}

// columnsOfType returns columns whose engine type matches want, excluding
// key columns (ids are poor question subjects).
func columnsOfType(t *schema.Table, want engine.Type) []schema.Column {
	var out []schema.Column
	for _, c := range t.Columns {
		if engine.TypeFromSQL(c.Type) != want {
			continue
		}
		lower := strings.ToLower(c.Name)
		if strings.HasSuffix(lower, "id") || strings.Contains(lower, "_id") {
			continue
		}
		out = append(out, c)
	}
	return out
}

// sampleDistinctFrom samples a value from the column that differs from ref.
func (g *Gen) sampleDistinctFrom(table, column string, ref engine.Value) (engine.Value, engine.Value, bool) {
	for i := 0; i < 40; i++ {
		_, v, ok := g.SampleValue(table, column)
		if !ok {
			continue
		}
		if eq, known := engine.Equal(ref, v); known && !eq {
			return ref, v, true
		}
	}
	return engine.Value{}, engine.Value{}, false
}

// sampleDistinct samples two different values from a column.
func (g *Gen) sampleDistinct(table, column string) (a, b engine.Value, ok bool) {
	var first engine.Value
	haveFirst := false
	for i := 0; i < 40; i++ {
		_, v, s := g.SampleValue(table, column)
		if !s {
			continue
		}
		if !haveFirst {
			first = v
			haveFirst = true
			continue
		}
		if eq, known := engine.Equal(first, v); known && !eq {
			return first, v, true
		}
	}
	return engine.Value{}, engine.Value{}, false
}

// ----------------------------------------------------------------------------

// CountAll: "How many {table} are there?"
func (g *Gen) CountAll(t *schema.Table) *Candidate {
	tp := t.Phrase()
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: &sqlast.FuncCall{Name: "COUNT", Star: true}}},
		From:  from(t.Name),
	}
	c := &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("How many %s are there?", tp),
		Paraphrase: fmt.Sprintf("Count how many %s are there in total.", tp),
		Gold:       gold,
	}
	if nums := columnsOfType(t, engine.TypeInt); len(nums) > 0 {
		num := nums[g.Rng.Intn(len(nums))]
		c.Perturbs = append(c.Perturbs, Perturb{
			Trap: Trap{
				Kind:   WrongAggregate,
				Phrase: fmt.Sprintf("how many %s are there", tp),
				Clause: sqlast.ClauseSelect,
				Old:    "SUM", New: "COUNT",
			},
			Apply: func(s *sqlast.SelectStmt) {
				s.Items[0].Expr = &sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{bareCol(num.Name)}}
			},
		})
	}
	return c
}

// ListCol: "List the {col} of all {table}."
func (g *Gen) ListCol(t *schema.Table, c schema.Column) *Candidate {
	tp, cp := t.Phrase(), phraseOf(c.NL, c.Name)
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: bareCol(c.Name)}},
		From:  from(t.Name),
	}
	cand := &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("List the %s of all %s.", cp, tp),
		Paraphrase: fmt.Sprintf("Please show the %s of all %s in the data.", cp, tp),
		Gold:       gold,
	}
	phrase := fmt.Sprintf("the %s of all %s", cp, tp)
	for _, sib := range columnsOfType(t, engine.TypeFromSQL(c.Type)) {
		if strings.EqualFold(sib.Name, c.Name) {
			continue
		}
		sib := sib
		cand.Perturbs = append(cand.Perturbs,
			Perturb{
				Trap: Trap{
					Kind: WrongColumn, Phrase: phrase, Clause: sqlast.ClauseSelect,
					Old: sib.Name, New: c.Name, Table: t.Name,
				},
				Apply: func(s *sqlast.SelectStmt) { s.Items[0].Expr = bareCol(sib.Name) },
			},
			Perturb{
				Trap: Trap{
					Kind: ExtraColumn, Phrase: phrase, Clause: sqlast.ClauseSelect,
					Column: sib.Name, Table: t.Name,
				},
				Apply: func(s *sqlast.SelectStmt) {
					s.Items = append(s.Items, sqlast.SelectItem{Expr: bareCol(sib.Name)})
				},
			})
		break
	}
	return cand
}

// ListDistinct: "List all the different {col} of {table}."
func (g *Gen) ListDistinct(t *schema.Table, c schema.Column) *Candidate {
	tp, cp := t.Phrase(), phraseOf(c.NL, c.Name)
	gold := &sqlast.SelectStmt{
		Distinct: true,
		Items:    []sqlast.SelectItem{{Expr: bareCol(c.Name)}},
		From:     from(t.Name),
	}
	return &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("List all the different %s of %s.", cp, tp),
		Paraphrase: fmt.Sprintf("Give me all the different %s of %s without repeats.", cp, tp),
		Gold:       gold,
		Perturbs: []Perturb{{
			Trap: Trap{
				Kind:   MissingDistinct,
				Phrase: fmt.Sprintf("different %s of %s", cp, tp),
				Clause: sqlast.ClauseSelect,
			},
			Apply: func(s *sqlast.SelectStmt) { s.Distinct = false },
		}},
	}
}

// FilterEq: "Show the {proj} of the {table} whose {filter} is {v}."
func (g *Gen) FilterEq(t *schema.Table, proj, filter schema.Column) *Candidate {
	tp := t.Phrase()
	pp, fp := phraseOf(proj.NL, proj.Name), phraseOf(filter.NL, filter.Name)
	v1, v2, ok := g.sampleDistinct(t.Name, filter.Name)
	if !ok {
		return nil
	}
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: bareCol(proj.Name)}},
		From:  from(t.Name),
		Where: &sqlast.Binary{Op: sqlast.OpEq, L: bareCol(filter.Name), R: litFor(v1)},
	}
	cand := &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("Show the %s of the %s whose %s is %s.", pp, tp, fp, quoteVal(v1)),
		Paraphrase: fmt.Sprintf("What is the %s of the %s whose %s is %s?", pp, tp, fp, quoteVal(v1)),
		Gold:       gold,
	}
	phrase := fmt.Sprintf("the %s of the %s whose %s is %s", pp, tp, fp, quoteVal(v1))
	cand.Perturbs = append(cand.Perturbs,
		Perturb{
			Trap: Trap{
				Kind: WrongLiteral, Phrase: phrase, Clause: sqlast.ClauseWhere,
				Old: v2.String(), New: v1.String(), Column: filter.Name,
			},
			Apply: func(s *sqlast.SelectStmt) {
				s.Where.(*sqlast.Binary).R = litFor(v2)
			},
		},
		Perturb{
			Trap: Trap{
				Kind: MissingFilter, Phrase: phrase, Clause: sqlast.ClauseWhere,
				Column: filter.Name, New: v1.String(),
			},
			Apply: func(s *sqlast.SelectStmt) { s.Where = nil },
		},
	)
	// Extra spurious filter on a third column.
	for _, extra := range t.Columns {
		if strings.EqualFold(extra.Name, filter.Name) || strings.EqualFold(extra.Name, proj.Name) {
			continue
		}
		_, ev, ok := g.SampleValue(t.Name, extra.Name)
		if !ok {
			continue
		}
		extra := extra
		cand.Perturbs = append(cand.Perturbs, Perturb{
			Trap: Trap{
				Kind: ExtraFilter, Phrase: phrase, Clause: sqlast.ClauseWhere,
				Column: extra.Name,
			},
			Apply: func(s *sqlast.SelectStmt) {
				s.Where = &sqlast.Binary{Op: sqlast.OpAnd, L: s.Where,
					R: &sqlast.Binary{Op: sqlast.OpEq, L: bareCol(extra.Name), R: litFor(ev)}}
			},
		})
		break
	}
	return cand
}

// FilterTwo: "Show the {proj} of the {table} whose {fA} is {vA} and whose
// {fB} is {vB}." Used for grounding-hard traps: two literal comparisons.
func (g *Gen) FilterTwo(t *schema.Table, proj, fA, fB schema.Column) *Candidate {
	tp := t.Phrase()
	pp := phraseOf(proj.NL, proj.Name)
	ap, bp := phraseOf(fA.NL, fA.Name), phraseOf(fB.NL, fB.Name)
	// Take both filter values from one concrete row, so the gold query is
	// non-empty: a mis-grounded edit then cannot coincidentally match gold
	// by both returning zero rows.
	tbl, ok := g.DB.Table(t.Name)
	if !ok || len(tbl.Rows) == 0 {
		return nil
	}
	row := tbl.Rows[g.Rng.Intn(len(tbl.Rows))]
	ai, bi := tbl.ColumnIndex(fA.Name), tbl.ColumnIndex(fB.Name)
	if ai < 0 || bi < 0 {
		return nil
	}
	va, vb1 := row[ai], row[bi]
	if va.IsNull() || vb1.IsNull() {
		return nil
	}
	_, vb2, ok := g.sampleDistinctFrom(t.Name, fB.Name, vb1)
	if !ok {
		return nil
	}
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: bareCol(proj.Name)}},
		From:  from(t.Name),
		Where: &sqlast.Binary{Op: sqlast.OpAnd,
			L: &sqlast.Binary{Op: sqlast.OpEq, L: bareCol(fA.Name), R: litFor(va)},
			R: &sqlast.Binary{Op: sqlast.OpEq, L: bareCol(fB.Name), R: litFor(vb1)},
		},
	}
	phrase := fmt.Sprintf("the %s of the %s whose %s is %s and whose %s is %s",
		pp, tp, ap, quoteVal(va), bp, quoteVal(vb1))
	return &Candidate{
		DB: g.Schema.Name,
		Question: fmt.Sprintf("Show the %s of the %s whose %s is %s and whose %s is %s.",
			pp, tp, ap, quoteVal(va), bp, quoteVal(vb1)),
		Paraphrase: fmt.Sprintf("Find the %s of the %s whose %s is %s and whose %s is %s.",
			pp, tp, ap, quoteVal(va), bp, quoteVal(vb1)),
		Gold: gold,
		Hint: HintGroundingHard,
		Perturbs: []Perturb{{
			// The wrong literal is in the SECOND comparison; un-grounded
			// repair that only knows the new value edits the first one.
			Trap: Trap{
				Kind: WrongLiteral, Phrase: phrase, Clause: sqlast.ClauseWhere,
				Old: vb2.String(), New: vb1.String(), Column: fB.Name,
			},
			Apply: func(s *sqlast.SelectStmt) {
				s.Where.(*sqlast.Binary).R.(*sqlast.Binary).R = litFor(vb2)
			},
		}},
	}
}

// CountFilterCmp: "How many {table} have a {col} greater than {v}?"
func (g *Gen) CountFilterCmp(t *schema.Table, c schema.Column) *Candidate {
	tp, cp := t.Phrase(), phraseOf(c.NL, c.Name)
	v1, v2, ok := g.sampleDistinct(t.Name, c.Name)
	if !ok {
		return nil
	}
	if engine.Compare(v1, v2) > 0 {
		v1, v2 = v2, v1
	}
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: &sqlast.FuncCall{Name: "COUNT", Star: true}}},
		From:  from(t.Name),
		Where: &sqlast.Binary{Op: sqlast.OpGt, L: bareCol(c.Name), R: litFor(v1)},
	}
	phrase := fmt.Sprintf("%s have a %s greater than %s", tp, cp, v1.String())
	return &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("How many %s have a %s greater than %s?", tp, cp, v1.String()),
		Paraphrase: fmt.Sprintf("Tell me how many %s have a %s greater than %s.", tp, cp, v1.String()),
		Gold:       gold,
		Perturbs: []Perturb{
			{
				Trap: Trap{
					Kind: WrongLiteral, Phrase: phrase, Clause: sqlast.ClauseWhere,
					Old: v2.String(), New: v1.String(), Column: c.Name,
				},
				Apply: func(s *sqlast.SelectStmt) { s.Where.(*sqlast.Binary).R = litFor(v2) },
			},
			{
				Trap: Trap{
					Kind: MissingFilter, Phrase: phrase, Clause: sqlast.ClauseWhere,
					// Old records the comparison shape so the annotator
					// phrases the filter correctly ("greater than").
					Column: c.Name, New: v1.String(), Old: "gt",
				},
				Apply: func(s *sqlast.SelectStmt) { s.Where = nil },
			},
		},
	}
}

var aggWords = map[string]string{
	"AVG": "average", "SUM": "total", "MIN": "minimum", "MAX": "maximum", "COUNT": "count",
}

// AggCol: "What is the {average|total|minimum|maximum} {col} of {table}?"
func (g *Gen) AggCol(t *schema.Table, c schema.Column, agg string) *Candidate {
	tp, cp := t.Phrase(), phraseOf(c.NL, c.Name)
	word := aggWords[agg]
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: &sqlast.FuncCall{Name: agg, Args: []sqlast.Expr{bareCol(c.Name)}}}},
		From:  from(t.Name),
	}
	// The wrong aggregate swaps for a different one.
	var wrong string
	switch agg {
	case "AVG":
		wrong = "SUM"
	case "SUM":
		wrong = "AVG"
	case "MIN":
		wrong = "MAX"
	default:
		wrong = "MIN"
	}
	return &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("What is the %s %s of the %s?", word, cp, tp),
		Paraphrase: fmt.Sprintf("Compute the %s %s of the %s, please.", word, cp, tp),
		Gold:       gold,
		Perturbs: []Perturb{{
			Trap: Trap{
				Kind:   WrongAggregate,
				Phrase: fmt.Sprintf("the %s %s of the %s", word, cp, tp),
				Clause: sqlast.ClauseSelect,
				Old:    wrong, New: agg,
			},
			Apply: func(s *sqlast.SelectStmt) {
				s.Items[0].Expr.(*sqlast.FuncCall).Name = wrong
			},
		}},
	}
}

// Superlative: "What is the {proj} of the {table} with the {highest|lowest}
// {key}?" using the MIN/MAX subquery form from the paper's Figure 7.
func (g *Gen) Superlative(t *schema.Table, proj, key schema.Column, max bool) *Candidate {
	tp := t.Phrase()
	pp, kp := phraseOf(proj.NL, proj.Name), phraseOf(key.NL, key.Name)
	agg, word := "MAX", "highest"
	if !max {
		agg, word = "MIN", "lowest"
	}
	sub := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: &sqlast.FuncCall{Name: agg, Args: []sqlast.Expr{bareCol(key.Name)}}}},
		From:  from(t.Name),
	}
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: bareCol(proj.Name)}},
		From:  from(t.Name),
		Where: &sqlast.Binary{Op: sqlast.OpEq, L: bareCol(key.Name), R: &sqlast.SubqueryExpr{Sub: sub}},
	}
	wrongAgg := "MIN"
	if !max {
		wrongAgg = "MAX"
	}
	cand := &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("What is the %s of the %s with the %s %s?", pp, tp, word, kp),
		Paraphrase: fmt.Sprintf("Please give the %s of the %s with the %s %s.", pp, tp, word, kp),
		Gold:       gold,
		Perturbs: []Perturb{{
			Trap: Trap{
				Kind:   WrongAggregate,
				Phrase: fmt.Sprintf("the %s of the %s with the %s %s", pp, tp, word, kp),
				Clause: sqlast.ClauseWhere,
				Old:    wrongAgg, New: agg,
			},
			Apply: func(s *sqlast.SelectStmt) {
				b := s.Where.(*sqlast.Binary)
				b.R.(*sqlast.SubqueryExpr).Sub.Items[0].Expr.(*sqlast.FuncCall).Name = wrongAgg
			},
		}},
	}
	// Wrong projected column (the paper's Figure 7: singer name instead of
	// song name).
	for _, sib := range columnsOfType(t, engine.TypeFromSQL(proj.Type)) {
		if strings.EqualFold(sib.Name, proj.Name) || strings.EqualFold(sib.Name, key.Name) {
			continue
		}
		sib := sib
		cand.Perturbs = append(cand.Perturbs, Perturb{
			Trap: Trap{
				Kind:   WrongColumn,
				Phrase: fmt.Sprintf("the %s of the %s with the %s %s", pp, tp, word, kp),
				Clause: sqlast.ClauseSelect,
				Old:    sib.Name, New: proj.Name, Table: t.Name,
			},
			Apply: func(s *sqlast.SelectStmt) { s.Items[0].Expr = bareCol(sib.Name) },
		})
		break
	}
	return cand
}

// OrderList: "List the {proj} of the {table} sorted by {key} in
// {ascending|descending} order."
func (g *Gen) OrderList(t *schema.Table, proj, key schema.Column, desc bool) *Candidate {
	tp := t.Phrase()
	pp, kp := phraseOf(proj.NL, proj.Name), phraseOf(key.NL, key.Name)
	dir, dirWord := "ASC", "ascending"
	if desc {
		dir, dirWord = "DESC", "descending"
	}
	gold := &sqlast.SelectStmt{
		Items:   []sqlast.SelectItem{{Expr: bareCol(proj.Name)}},
		From:    from(t.Name),
		OrderBy: []sqlast.OrderItem{{Expr: bareCol(key.Name), Desc: desc}},
	}
	return &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("List the %s of the %s sorted by %s in %s order.", pp, tp, kp, dirWord),
		Paraphrase: fmt.Sprintf("Show the %s of the %s sorted by %s in %s order please.", pp, tp, kp, dirWord),
		Gold:       gold,
		Perturbs: []Perturb{{
			Trap: Trap{
				Kind:   MissingOrderBy,
				Phrase: fmt.Sprintf("the %s of the %s sorted by %s in %s order", pp, tp, kp, dirWord),
				Clause: sqlast.ClauseOrderBy,
				Column: key.Name, New: dir,
			},
			Apply: func(s *sqlast.SelectStmt) { s.OrderBy = nil },
		}},
	}
}

// GroupCount: "For each {col}, how many {table} are there?"
func (g *Gen) GroupCount(t *schema.Table, c schema.Column) *Candidate {
	tp, cp := t.Phrase(), phraseOf(c.NL, c.Name)
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{
			{Expr: bareCol(c.Name)},
			{Expr: &sqlast.FuncCall{Name: "COUNT", Star: true}},
		},
		From:    from(t.Name),
		GroupBy: []sqlast.Expr{bareCol(c.Name)},
	}
	cand := &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("For each %s, count the number of %s.", cp, tp),
		Paraphrase: fmt.Sprintf("For each %s, count the number of %s, please.", cp, tp),
		Gold:       gold,
	}
	if nums := columnsOfType(t, engine.TypeInt); len(nums) > 0 {
		num := nums[g.Rng.Intn(len(nums))]
		cand.Perturbs = append(cand.Perturbs, Perturb{
			Trap: Trap{
				Kind:   WrongAggregate,
				Phrase: fmt.Sprintf("for each %s, count the number of %s", cp, tp),
				Clause: sqlast.ClauseSelect,
				Old:    "SUM", New: "COUNT",
			},
			Apply: func(s *sqlast.SelectStmt) {
				s.Items[1].Expr = &sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{bareCol(num.Name)}}
			},
		})
	}
	return cand
}

// Having: "Which {col} appear in more than {n} {table}?"
func (g *Gen) Having(t *schema.Table, c schema.Column, n, wrongN int) *Candidate {
	tp, cp := t.Phrase(), phraseOf(c.NL, c.Name)
	gold := &sqlast.SelectStmt{
		Items:   []sqlast.SelectItem{{Expr: bareCol(c.Name)}},
		From:    from(t.Name),
		GroupBy: []sqlast.Expr{bareCol(c.Name)},
		Having: &sqlast.Binary{Op: sqlast.OpGt,
			L: &sqlast.FuncCall{Name: "COUNT", Star: true},
			R: sqlast.Num(fmt.Sprint(n))},
	}
	return &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("Which %s appear in more than %d %s?", cp, n, tp),
		Paraphrase: fmt.Sprintf("Tell me which %s appear in more than %d %s.", cp, n, tp),
		Gold:       gold,
		Perturbs: []Perturb{{
			Trap: Trap{
				Kind:   WrongLiteral,
				Phrase: fmt.Sprintf("which %s appear in more than %d %s", cp, n, tp),
				Clause: sqlast.ClauseHaving,
				Old:    fmt.Sprint(wrongN), New: fmt.Sprint(n), Column: cp,
			},
			Apply: func(s *sqlast.SelectStmt) {
				s.Having.(*sqlast.Binary).R = sqlast.Num(fmt.Sprint(wrongN))
			},
		}},
	}
}

// JoinList: "Show the {c1} of each {t1} together with the {c2} of its {t2}."
// t1 must have a foreign key into t2.
func (g *Gen) JoinList(t1 *schema.Table, c1 schema.Column, t2 *schema.Table, c2 schema.Column, fk schema.ForeignKey) *Candidate {
	tp1, tp2 := t1.Phrase(), t2.Phrase()
	p1, p2 := phraseOf(c1.NL, c1.Name), phraseOf(c2.NL, c2.Name)
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{
			{Expr: colRef(t1.Name, c1.Name)},
			{Expr: colRef(t2.Name, c2.Name)},
		},
		From: &sqlast.FromClause{
			First: sqlast.TableSource{Name: t1.Name},
			Joins: []sqlast.Join{{
				Type:   sqlast.JoinInner,
				Source: sqlast.TableSource{Name: t2.Name},
				On: &sqlast.Binary{Op: sqlast.OpEq,
					L: colRef(t1.Name, fk.Column),
					R: colRef(t2.Name, fk.RefColumn)},
			}},
		},
	}
	cand := &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("Show the %s of each %s together with the %s of its %s.", p1, tp1, p2, tp2),
		Paraphrase: fmt.Sprintf("Please show the %s of each %s together with the %s of its %s.", p1, tp1, p2, tp2),
		Gold:       gold,
	}
	phrase := fmt.Sprintf("the %s of each %s together with the %s of its %s", p1, tp1, p2, tp2)
	for _, sib := range columnsOfType(t2, engine.TypeFromSQL(c2.Type)) {
		if strings.EqualFold(sib.Name, c2.Name) {
			continue
		}
		sib := sib
		cand.Perturbs = append(cand.Perturbs,
			Perturb{
				Trap: Trap{
					Kind: WrongColumn, Phrase: phrase, Clause: sqlast.ClauseSelect,
					Old: sib.Name, New: c2.Name, Table: t2.Name,
				},
				Apply: func(s *sqlast.SelectStmt) { s.Items[1].Expr = colRef(t2.Name, sib.Name) },
			},
			Perturb{
				Trap: Trap{
					Kind: ExtraColumn, Phrase: phrase, Clause: sqlast.ClauseSelect,
					Column: sib.Name, Table: t2.Name,
				},
				Apply: func(s *sqlast.SelectStmt) {
					s.Items = append(s.Items, sqlast.SelectItem{Expr: colRef(t2.Name, sib.Name)})
				},
			})
		break
	}
	return cand
}

// CreatedIn is the paper's running example: "How many {table} were created
// in {month}?" with the year left implicit. The gold query assumes the
// current year (2024); the naive model assumes 2023 — the Figure 4 trap.
func (g *Gen) CreatedIn(t *schema.Table, dateCol schema.Column, month string, goldYear, wrongYear int) *Candidate {
	tp := t.Phrase()
	m := MonthNumber(month)
	if m == 0 {
		return nil
	}
	startOf := func(year, month int) string {
		if month > 12 {
			year, month = year+1, 1
		}
		return fmt.Sprintf("%04d-%02d-01", year, month)
	}
	rangeWhere := func(year int) sqlast.Expr {
		return &sqlast.Binary{Op: sqlast.OpAnd,
			L: &sqlast.Binary{Op: sqlast.OpGte, L: bareCol(dateCol.Name), R: sqlast.Str(startOf(year, m))},
			R: &sqlast.Binary{Op: sqlast.OpLt, L: bareCol(dateCol.Name), R: sqlast.Str(startOf(year, m+1))},
		}
	}
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: &sqlast.FuncCall{Name: "COUNT", Star: true}, Alias: "createdCount"}},
		From:  from(t.Name),
		Where: rangeWhere(goldYear),
	}
	return &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("How many %s were created in %s?", tp, month),
		Paraphrase: fmt.Sprintf("Count how many %s were created in %s, please.", tp, month),
		Gold:       gold,
		Perturbs: []Perturb{{
			Trap: Trap{
				Kind:   WrongLiteral,
				Phrase: fmt.Sprintf("%s were created in %s", tp, month),
				Clause: sqlast.ClauseWhere,
				Old:    fmt.Sprint(wrongYear), New: fmt.Sprint(goldYear),
				Column: dateCol.Name,
			},
			Apply: func(s *sqlast.SelectStmt) { s.Where = rangeWhere(wrongYear) },
		}},
	}
}

// WrongTablePair: "{question about items}" where two tables are plausible
// resolutions of the same phrase (closed-domain jargon). The gold counts
// rows in the right table; the trap counts the wrong one. Both tables need
// a comparable shape only in that COUNT(*) works everywhere.
func (g *Gen) WrongTablePair(right, wrong *schema.Table, jargon string) *Candidate {
	gold := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: &sqlast.FuncCall{Name: "COUNT", Star: true}}},
		From:  from(right.Name),
	}
	return &Candidate{
		DB:         g.Schema.Name,
		Question:   fmt.Sprintf("How many %s do we have?", jargon),
		Paraphrase: fmt.Sprintf("Tell me how many %s do we have right now.", jargon),
		Gold:       gold,
		Perturbs: []Perturb{{
			Trap: Trap{
				Kind:   WrongTable,
				Phrase: fmt.Sprintf("how many %s do we have", jargon),
				Clause: sqlast.ClauseFrom,
				Old:    wrong.Name, New: right.Name,
			},
			Apply: func(s *sqlast.SelectStmt) { s.From.First.Name = wrong.Name },
		}},
	}
}
