package dataset_test

import (
	"reflect"
	"testing"

	"fisql/internal/dataset/aep"
	"fisql/internal/dataset/spider"
	"fisql/internal/engine"
)

// TestScaleRowsDeterministic pins the -rows contract: scaling is a pure
// function of (seed, multiplier), only ever appends rows, and leaves the 1x
// corpus byte-for-byte identical to the unscaled build.
func TestScaleRowsDeterministic(t *testing.T) {
	const mult = 3

	base, err := aep.Build()
	if err != nil {
		t.Fatal(err)
	}
	one, err := aep.BuildRows(1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := aep.BuildRows(mult)
	if err != nil {
		t.Fatal(err)
	}
	b, err := aep.BuildRows(mult)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(one.Examples, base.Examples) {
		t.Fatal("BuildRows(1) examples differ from Build")
	}
	if !reflect.DeepEqual(a.Examples, base.Examples) {
		t.Fatal("scaling changed the examples")
	}
	for name, db := range base.DBs {
		baseTables := db.Tables()
		oneTables := one.DBs[name].Tables()
		aTables := a.DBs[name].Tables()
		bTables := b.DBs[name].Tables()
		for i, bt := range baseTables {
			if !reflect.DeepEqual(oneTables[i].Rows, bt.Rows) {
				t.Fatalf("%s.%s: BuildRows(1) rows differ from Build", name, bt.Name)
			}
			at, rt := aTables[i], bTables[i]
			if len(at.Rows) != len(bt.Rows)*mult {
				t.Fatalf("%s.%s: scaled to %d rows, want %d*%d", name, bt.Name, len(at.Rows), len(bt.Rows), mult)
			}
			if !reflect.DeepEqual(at.Rows[:len(bt.Rows)], bt.Rows) {
				t.Fatalf("%s.%s: scaling rewrote base rows", name, bt.Name)
			}
			if !reflect.DeepEqual(at.Rows, rt.Rows) {
				t.Fatalf("%s.%s: two identical BuildRows(%d) runs diverged", name, bt.Name, mult)
			}
		}
	}
}

// TestScaleRowsSpiderSpot spot-checks one spider database (the full corpus
// takes ~1s per build; the aep test above covers the exhaustive contract)
// and that gold queries still run — and agree across executors — at scale.
func TestScaleRowsSpiderSpot(t *testing.T) {
	const mult = 4
	base, err := spider.Build()
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := spider.BuildRows(mult)
	if err != nil {
		t.Fatal(err)
	}
	if len(scaled.Examples) != len(base.Examples) {
		t.Fatalf("example count changed: %d vs %d", len(scaled.Examples), len(base.Examples))
	}
	for name, db := range base.DBs {
		sdb := scaled.DBs[name]
		bt, st := db.Tables(), sdb.Tables()
		for i := range bt {
			if len(st[i].Rows) != len(bt[i].Rows)*mult {
				t.Fatalf("%s.%s: %d rows, want %d", name, bt[i].Name, len(st[i].Rows), len(bt[i].Rows)*mult)
			}
		}
	}
	checked := 0
	for _, e := range scaled.Examples {
		db := scaled.DBs[e.DB]
		on, err := engine.NewExecutor(db).Query(e.Gold)
		if err != nil {
			t.Fatalf("%s at %dx: %v", e.Gold, mult, err)
		}
		exOff := engine.NewExecutor(db)
		exOff.SetColumnar(false)
		off, err := exOff.Query(e.Gold)
		if err != nil || !reflect.DeepEqual(on, off) {
			t.Fatalf("%s at %dx: columnar/row divergence (err=%v)", e.Gold, mult, err)
		}
		checked++
		if checked >= 50 {
			break
		}
	}
}
