package dataset

import (
	"math/rand"
	"testing"

	"fisql/internal/schema"
	"fisql/internal/sqlparse"
)

func testSchema() *schema.Schema {
	return &schema.Schema{
		Name: "testdb",
		Tables: []schema.Table{
			{
				Name: "singer", NL: []string{"singers"},
				PrimaryKey: []string{"singer_id"},
				Columns: []schema.Column{
					{Name: "singer_id", Type: "INT"},
					{Name: "name", Type: "TEXT", NL: []string{"name"}},
					{Name: "song_name", Type: "TEXT", NL: []string{"song name"}},
					{Name: "country", Type: "TEXT", NL: []string{"country"}},
					{Name: "age", Type: "INT", NL: []string{"age"}},
					{Name: "joined_date", Type: "DATE", NL: []string{"joined date"}},
				},
			},
		},
	}
}

func testGen(t *testing.T) *Gen {
	t.Helper()
	ds := New("test")
	g, err := NewGen(ds, testSchema(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Populate(30); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOpStringsAndParse(t *testing.T) {
	for _, op := range []Op{OpAdd, OpRemove, OpEdit} {
		back, ok := ParseOp(op.String())
		if !ok || back != op {
			t.Errorf("roundtrip %v failed", op)
		}
	}
	if _, ok := ParseOp("frobnicate"); ok {
		t.Error("garbage op parsed")
	}
}

func TestTrapKindOps(t *testing.T) {
	tests := map[TrapKind]Op{
		WrongLiteral:    OpEdit,
		WrongColumn:     OpEdit,
		WrongAggregate:  OpEdit,
		WrongTable:      OpEdit,
		MissingOrderBy:  OpAdd,
		MissingFilter:   OpAdd,
		MissingDistinct: OpAdd,
		ExtraColumn:     OpRemove,
		ExtraFilter:     OpRemove,
	}
	for k, want := range tests {
		if k.Op() != want {
			t.Errorf("%v.Op() = %v, want %v", k, k.Op(), want)
		}
	}
}

func TestPopulateDeterministic(t *testing.T) {
	g1 := testGen(t)
	g2 := testGen(t)
	t1, _ := g1.DB.Table("singer")
	t2, _ := g2.DB.Table("singer")
	if len(t1.Rows) != len(t2.Rows) {
		t.Fatal("row counts differ between identically-seeded populations")
	}
	for i := range t1.Rows {
		for j := range t1.Rows[i] {
			if t1.Rows[i][j].Key() != t2.Rows[i][j].Key() {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

func TestPopulateColumnSemantics(t *testing.T) {
	g := testGen(t)
	tab, _ := g.DB.Table("singer")
	for i, row := range tab.Rows {
		if row[0].I != int64(i+1) {
			t.Fatalf("primary key not sequential: row %d has id %v", i, row[0])
		}
		if row[5].T != 0 && len(row[5].S) != 10 {
			t.Fatalf("date column malformed: %q", row[5].S)
		}
	}
}

func TestRealizeUntrapped(t *testing.T) {
	g := testGen(t)
	tab := g.Schema.Table("singer")
	c := g.CountAll(tab)
	e := g.Realize(c, nil)
	if e == nil {
		t.Fatal("realize failed")
	}
	if len(e.Traps) != 0 || e.WrongSQL() != e.Gold {
		t.Errorf("untrapped example misbuilt: %+v", e)
	}
}

func TestRealizeTrapped(t *testing.T) {
	g := testGen(t)
	tab := g.Schema.Table("singer")
	c := g.FilterEq(tab, *tab.Column("name"), *tab.Column("country"))
	if c == nil {
		t.Fatal("candidate not built")
	}
	e := g.Realize(c, c.Perturbs[:1])
	if e == nil {
		t.Fatal("realize with trap failed")
	}
	if e.WrongSQL() == e.Gold {
		t.Error("wrong SQL equals gold")
	}
	if e.FullMask() != 1 {
		t.Errorf("full mask: %b", e.FullMask())
	}
	sql, ok := e.SQLFor(0)
	if !ok || sql != e.Gold {
		t.Error("SQLFor(0) should be gold")
	}
	if _, ok := e.SQLFor(2); ok {
		t.Error("SQLFor out-of-range mask should fail")
	}
}

func TestUnfixedMaskTransitions(t *testing.T) {
	g := testGen(t)
	tab := g.Schema.Table("singer")
	c := g.FilterEq(tab, *tab.Column("name"), *tab.Column("country"))
	e := g.Realize(c, c.Perturbs[:1])
	if e == nil {
		t.Fatal("realize failed")
	}
	if m := e.UnfixedMask(e.WrongSQL()); m != 1 {
		t.Errorf("wrong SQL mask: %b", m)
	}
	if m := e.UnfixedMask(e.Gold); m != 0 {
		t.Errorf("gold mask: %b", m)
	}
	if m := e.UnfixedMask("NOT SQL AT ALL"); m != e.FullMask() {
		t.Errorf("unparseable SQL should report full mask, got %b", m)
	}
}

func TestFixedInPerKind(t *testing.T) {
	g := testGen(t)
	tab := g.Schema.Table("singer")
	candidates := []*Candidate{
		g.ListDistinct(tab, *tab.Column("country")),
		g.OrderList(tab, *tab.Column("name"), *tab.Column("age"), true),
		g.Superlative(tab, *tab.Column("song_name"), *tab.Column("age"), false),
		g.CountFilterCmp(tab, *tab.Column("age")),
	}
	for _, c := range candidates {
		if c == nil {
			t.Fatal("candidate not built")
		}
		for pi := range c.Perturbs {
			e := g.Realize(c, c.Perturbs[pi:pi+1])
			if e == nil {
				continue // some perturbations legitimately fail verification
			}
			goldSel, err := sqlparse.ParseSelect(e.Gold)
			if err != nil {
				t.Fatal(err)
			}
			if !e.FixedIn(0, goldSel) {
				t.Errorf("%v: gold not detected as fixed (q=%s)", e.Traps[0].Kind, e.Question)
			}
			wrongSel, err := sqlparse.ParseSelect(e.WrongSQL())
			if err != nil {
				t.Fatal(err)
			}
			if e.FixedIn(0, wrongSel) {
				t.Errorf("%v: wrong SQL detected as fixed", e.Traps[0].Kind)
			}
		}
	}
}

func TestContainsPhrase(t *testing.T) {
	if !ContainsPhrase("How many Singers are there?", "how many singers") {
		t.Error("case-insensitive containment failed")
	}
	if ContainsPhrase("anything", "") {
		t.Error("empty phrase must not match")
	}
	if ContainsPhrase("list the name", "song name") {
		t.Error("non-substring matched")
	}
}

func TestDatasetLookups(t *testing.T) {
	g := testGen(t)
	tab := g.Schema.Table("singer")
	c := g.CountAll(tab)
	e := g.Realize(c, c.Perturbs[:1])
	if e == nil {
		t.Fatal("realize failed")
	}
	e.ID = "x-1"
	g.DS.AddExample(e)
	got, ok := g.DS.ExampleByQuestion("HOW MANY   singers are there?")
	if !ok || got != e {
		t.Error("question lookup should normalize")
	}
	if len(g.DS.Errors()) != 1 {
		t.Error("errors should include the trapped example")
	}
	if len(g.DS.AnnotatedErrors()) != 0 {
		t.Error("unannotated example must not appear in annotated errors")
	}
	e.Annotatable = true
	if len(g.DS.AnnotatedErrors()) != 1 {
		t.Error("annotated example missing")
	}
}

func TestDuplicateSchemaRejected(t *testing.T) {
	ds := New("test")
	if _, err := NewGen(ds, testSchema(), rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AddSchema(testSchema()); err == nil {
		t.Fatal("duplicate schema should error")
	}
}

func TestCoverDemoCarriesPhrases(t *testing.T) {
	g := testGen(t)
	tab := g.Schema.Table("singer")
	c := g.CountAll(tab)
	e := g.Realize(c, c.Perturbs[:1])
	if e == nil {
		t.Fatal("realize failed")
	}
	d := CoverDemo(e, c.Paraphrase)
	if d.SQL != e.Gold || len(d.Phrases) != 1 {
		t.Errorf("cover demo: %+v", d)
	}
	if !ContainsPhrase(d.Question, e.Traps[0].Phrase) {
		t.Errorf("paraphrase %q does not carry phrase %q", d.Question, e.Traps[0].Phrase)
	}
}

func TestQuotasArithmetic(t *testing.T) {
	q := Quotas{Total: 100, Covered: 10, TwoTrap: 5, SingleGood: 20,
		GroundingHard: 1, Misaligned: 3, Vague: 2, Unannotated: 9}
	if q.Trapped() != 50 {
		t.Errorf("trapped: %d", q.Trapped())
	}
	if q.Errors() != 40 {
		t.Errorf("errors: %d", q.Errors())
	}
}

func TestCompatibleTraps(t *testing.T) {
	if !compatibleTraps(WrongLiteral, ExtraFilter) || !compatibleTraps(ExtraFilter, WrongLiteral) {
		t.Error("the allowlisted pair must be compatible both ways")
	}
	if compatibleTraps(WrongLiteral, MissingFilter) {
		t.Error("a dropped WHERE clause cannot coexist with a literal edit")
	}
	if compatibleTraps(WrongColumn, ExtraColumn) {
		t.Error("column swap corrupts the extra-column trap")
	}
}

// newRng returns the shared deterministic RNG used by template tests.
func newRng() *rand.Rand { return rand.New(rand.NewSource(7)) }
