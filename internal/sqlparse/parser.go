// Package sqlparse parses SQL text into the AST of internal/sqlast.
//
// The grammar covers the query surface the benchmarks generate: SELECT with
// DISTINCT, expressions, aggregates, multi-way joins (INNER/LEFT/CROSS),
// WHERE with boolean combinations, IN/BETWEEN/LIKE/IS NULL/EXISTS, scalar
// and table subqueries, GROUP BY/HAVING, set operations, ORDER BY and
// LIMIT/OFFSET — plus CREATE TABLE and INSERT for loading fixtures.
package sqlparse

import (
	"fmt"
	"strings"

	"fisql/internal/sqlast"
	"fisql/internal/sqltext"
)

// Error is a parse error with the offending token position.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql parse error at offset %d: %s", e.Pos, e.Msg) }

type parser struct {
	toks []sqltext.Token
	pos  int
}

// Parse parses a single SQL statement. A trailing semicolon is permitted.
func Parse(src string) (sqlast.Statement, error) {
	toks, err := sqltext.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == sqltext.KindSemicolon {
		p.pos++
	}
	if t := p.peek(); t.Kind != sqltext.KindEOF {
		return nil, &Error{Pos: t.Pos, Msg: fmt.Sprintf("unexpected %s after statement", t)}
	}
	return stmt, nil
}

// ParseSelect parses src and requires it to be a SELECT statement.
func ParseSelect(src string) (*sqlast.SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlast.SelectStmt)
	if !ok {
		return nil, &Error{Pos: 0, Msg: "not a SELECT statement"}
	}
	return sel, nil
}

// ParseScript parses a sequence of semicolon-separated statements.
func ParseScript(src string) ([]sqlast.Statement, error) {
	toks, err := sqltext.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []sqlast.Statement
	for p.peek().Kind != sqltext.KindEOF {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		for p.peek().Kind == sqltext.KindSemicolon {
			p.pos++
		}
	}
	return stmts, nil
}

func (p *parser) peek() sqltext.Token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	end := 0
	if n := len(p.toks); n > 0 {
		end = p.toks[n-1].End
	}
	return sqltext.Token{Kind: sqltext.KindEOF, Pos: end, End: end}
}

func (p *parser) next() sqltext.Token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

// keyword reports whether the next token is the given keyword (consumed if so).
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.Kind == sqltext.KindKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

// peekKeyword reports whether the next token is the given keyword, without
// consuming it.
func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == sqltext.KindKeyword && t.Text == kw
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		t := p.peek()
		return &Error{Pos: t.Pos, Msg: fmt.Sprintf("expected %s, found %s", kw, t)}
	}
	return nil
}

func (p *parser) expect(k sqltext.Kind) (sqltext.Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, &Error{Pos: t.Pos, Msg: fmt.Sprintf("expected %s, found %s", k, t)}
	}
	p.pos++
	return t, nil
}

// ident consumes an identifier; unreserved keywords used as names (e.g. a
// column literally named "date") are also accepted.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind == sqltext.KindIdent {
		p.pos++
		return t.Text, nil
	}
	return "", &Error{Pos: t.Pos, Msg: fmt.Sprintf("expected identifier, found %s", t)}
}

func (p *parser) statement() (sqlast.Statement, error) {
	t := p.peek()
	if t.Kind != sqltext.KindKeyword {
		return nil, &Error{Pos: t.Pos, Msg: fmt.Sprintf("expected statement, found %s", t)}
	}
	switch t.Text {
	case "SELECT":
		return p.selectStmt()
	case "CREATE":
		return p.createTable()
	case "INSERT":
		return p.insert()
	}
	return nil, &Error{Pos: t.Pos, Msg: fmt.Sprintf("unsupported statement %q", t.Text)}
}

// selectStmt parses a full SELECT including set operations, ORDER BY and
// LIMIT (which attach to the compound as a whole).
func (p *parser) selectStmt() (*sqlast.SelectStmt, error) {
	sel, err := p.selectCore()
	if err != nil {
		return nil, err
	}
	head := sel
	// Set operations chain left-associatively; we thread them as a linked
	// Compound list off the head.
	cur := head
	for {
		var op sqlast.SetOp
		switch {
		case p.keyword("UNION"):
			if p.keyword("ALL") {
				op = sqlast.SetUnionAll
			} else {
				op = sqlast.SetUnion
			}
		case p.keyword("INTERSECT"):
			op = sqlast.SetIntersect
		case p.keyword("EXCEPT"):
			op = sqlast.SetExcept
		default:
			goto tail
		}
		right, err := p.selectCore()
		if err != nil {
			return nil, err
		}
		cur.Compound = &sqlast.Compound{Op: op, Right: right}
		cur = right
	}
tail:
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := sqlast.OrderItem{Expr: e}
			if p.keyword("DESC") {
				item.Desc = true
			} else {
				p.keyword("ASC")
			}
			head.OrderBy = append(head.OrderBy, item)
			if p.peek().Kind != sqltext.KindComma {
				break
			}
			p.pos++
		}
	}
	if p.keyword("LIMIT") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		head.Limit = e
		if p.keyword("OFFSET") {
			off, err := p.expr()
			if err != nil {
				return nil, err
			}
			head.Offset = off
		}
	}
	return head, nil
}

// selectCore parses SELECT ... [FROM ...] [WHERE ...] [GROUP BY ... [HAVING ...]].
func (p *parser) selectCore() (*sqlast.SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &sqlast.SelectStmt{}
	if p.keyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.keyword("ALL")
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.peek().Kind != sqltext.KindComma {
			break
		}
		p.pos++
	}
	if p.keyword("FROM") {
		from, err := p.fromClause()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.keyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.peek().Kind != sqltext.KindComma {
				break
			}
			p.pos++
		}
	}
	// HAVING without GROUP BY filters the single global-aggregation group,
	// as in standard SQL.
	if p.keyword("HAVING") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	return sel, nil
}

func (p *parser) selectItem() (sqlast.SelectItem, error) {
	if p.peek().Kind == sqltext.KindStar {
		p.pos++
		return sqlast.SelectItem{Star: true}, nil
	}
	// "table.*" needs two-token lookahead before falling back to expr.
	if p.peek().Kind == sqltext.KindIdent && p.pos+2 < len(p.toks)+1 {
		if p.pos+2 <= len(p.toks)-1 &&
			p.toks[p.pos+1].Kind == sqltext.KindDot &&
			p.toks[p.pos+2].Kind == sqltext.KindStar {
			name := p.toks[p.pos].Text
			p.pos += 3
			return sqlast.SelectItem{TableStar: name}, nil
		}
	}
	e, err := p.expr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	item := sqlast.SelectItem{Expr: e}
	if p.keyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Kind == sqltext.KindIdent {
		// Bare alias: SELECT name n FROM ...
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) fromClause() (*sqlast.FromClause, error) {
	first, err := p.tableSource()
	if err != nil {
		return nil, err
	}
	from := &sqlast.FromClause{First: first}
	for {
		var jt sqlast.JoinType
		switch {
		case p.peek().Kind == sqltext.KindComma:
			p.pos++
			jt = sqlast.JoinCross
		case p.peekKeyword("JOIN"):
			p.pos++
			jt = sqlast.JoinInner
		case p.peekKeyword("INNER"):
			p.pos++
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = sqlast.JoinInner
		case p.peekKeyword("LEFT"):
			p.pos++
			p.keyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = sqlast.JoinLeft
		case p.peekKeyword("CROSS"):
			p.pos++
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = sqlast.JoinCross
		default:
			return from, nil
		}
		src, err := p.tableSource()
		if err != nil {
			return nil, err
		}
		j := sqlast.Join{Type: jt, Source: src}
		if p.keyword("ON") {
			on, err := p.expr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		from.Joins = append(from.Joins, j)
	}
}

func (p *parser) tableSource() (sqlast.TableSource, error) {
	var ts sqlast.TableSource
	if p.peek().Kind == sqltext.KindLParen {
		p.pos++
		sub, err := p.selectStmt()
		if err != nil {
			return ts, err
		}
		if _, err := p.expect(sqltext.KindRParen); err != nil {
			return ts, err
		}
		ts.Sub = sub
	} else {
		name, err := p.ident()
		if err != nil {
			return ts, err
		}
		ts.Name = name
	}
	if p.keyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return ts, err
		}
		ts.Alias = alias
	} else if p.peek().Kind == sqltext.KindIdent {
		ts.Alias = p.next().Text
	}
	return ts, nil
}

// ----------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) expr() (sqlast.Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (sqlast.Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: sqlast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (sqlast.Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: sqlast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (sqlast.Expr, error) {
	if p.keyword("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: sqlast.OpNot, X: x}, nil
	}
	return p.predicate()
}

// predicate parses comparison-level operators plus SQL predicates
// (IN/BETWEEN/LIKE/IS NULL).
func (p *parser) predicate() (sqlast.Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	for {
		not := false
		if p.peekKeyword("NOT") {
			// Lookahead: NOT IN / NOT BETWEEN / NOT LIKE.
			save := p.pos
			p.pos++
			if !p.peekKeyword("IN") && !p.peekKeyword("BETWEEN") && !p.peekKeyword("LIKE") {
				p.pos = save
				return l, nil
			}
			not = true
		}
		switch {
		case p.keyword("IN"):
			if _, err := p.expect(sqltext.KindLParen); err != nil {
				return nil, err
			}
			in := &sqlast.InExpr{X: l, Not: not}
			if p.peekKeyword("SELECT") {
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				in.Sub = sub
			} else {
				for {
					v, err := p.expr()
					if err != nil {
						return nil, err
					}
					in.List = append(in.List, v)
					if p.peek().Kind != sqltext.KindComma {
						break
					}
					p.pos++
				}
			}
			if _, err := p.expect(sqltext.KindRParen); err != nil {
				return nil, err
			}
			l = in
		case p.keyword("BETWEEN"):
			lo, err := p.additive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.additive()
			if err != nil {
				return nil, err
			}
			l = &sqlast.BetweenExpr{X: l, Not: not, Lo: lo, Hi: hi}
		case p.keyword("LIKE"):
			pat, err := p.additive()
			if err != nil {
				return nil, err
			}
			l = &sqlast.LikeExpr{X: l, Not: not, Pattern: pat}
		case p.keyword("IS"):
			isNot := p.keyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &sqlast.IsNullExpr{X: l, Not: isNot}
		default:
			op, ok := comparisonOp(p.peek().Kind)
			if !ok {
				return l, nil
			}
			p.pos++
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Binary{Op: op, L: l, R: r}
		}
	}
}

func comparisonOp(k sqltext.Kind) (sqlast.BinaryOp, bool) {
	switch k {
	case sqltext.KindEq:
		return sqlast.OpEq, true
	case sqltext.KindNeq:
		return sqlast.OpNeq, true
	case sqltext.KindLt:
		return sqlast.OpLt, true
	case sqltext.KindLte:
		return sqlast.OpLte, true
	case sqltext.KindGt:
		return sqlast.OpGt, true
	case sqltext.KindGte:
		return sqlast.OpGte, true
	}
	return 0, false
}

func (p *parser) additive() (sqlast.Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op sqlast.BinaryOp
		switch p.peek().Kind {
		case sqltext.KindPlus:
			op = sqlast.OpAdd
		case sqltext.KindMinus:
			op = sqlast.OpSub
		default:
			return l, nil
		}
		p.pos++
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) multiplicative() (sqlast.Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op sqlast.BinaryOp
		switch p.peek().Kind {
		case sqltext.KindStar:
			op = sqlast.OpMul
		case sqltext.KindSlash:
			op = sqlast.OpDiv
		case sqltext.KindPercent:
			op = sqlast.OpMod
		default:
			return l, nil
		}
		p.pos++
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) unary() (sqlast.Expr, error) {
	if p.peek().Kind == sqltext.KindMinus {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: sqlast.OpNeg, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (sqlast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case sqltext.KindNumber:
		p.pos++
		return sqlast.Num(t.Text), nil
	case sqltext.KindString:
		p.pos++
		return sqlast.Str(t.Text), nil
	case sqltext.KindLParen:
		p.pos++
		if p.peekKeyword("SELECT") {
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sqltext.KindRParen); err != nil {
				return nil, err
			}
			return &sqlast.SubqueryExpr{Sub: sub}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sqltext.KindRParen); err != nil {
			return nil, err
		}
		return e, nil
	case sqltext.KindKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return sqlast.Null(), nil
		case "TRUE":
			p.pos++
			return sqlast.Bool(true), nil
		case "FALSE":
			p.pos++
			return sqlast.Bool(false), nil
		case "EXISTS":
			p.pos++
			if _, err := p.expect(sqltext.KindLParen); err != nil {
				return nil, err
			}
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sqltext.KindRParen); err != nil {
				return nil, err
			}
			return &sqlast.ExistsExpr{Sub: sub}, nil
		case "CASE":
			return p.caseExpr()
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.pos++
			return p.funcCall(t.Text)
		}
		return nil, &Error{Pos: t.Pos, Msg: fmt.Sprintf("unexpected keyword %q in expression", t.Text)}
	case sqltext.KindIdent:
		p.pos++
		// Function call?
		if p.peek().Kind == sqltext.KindLParen {
			return p.funcCall(strings.ToUpper(t.Text))
		}
		// Qualified column?
		if p.peek().Kind == sqltext.KindDot {
			p.pos++
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &sqlast.ColumnRef{Table: t.Text, Column: col}, nil
		}
		return &sqlast.ColumnRef{Column: t.Text}, nil
	}
	return nil, &Error{Pos: t.Pos, Msg: fmt.Sprintf("unexpected %s in expression", t)}
}

func (p *parser) funcCall(name string) (sqlast.Expr, error) {
	if _, err := p.expect(sqltext.KindLParen); err != nil {
		return nil, err
	}
	fc := &sqlast.FuncCall{Name: name}
	if p.peek().Kind == sqltext.KindStar {
		p.pos++
		fc.Star = true
	} else if p.peek().Kind != sqltext.KindRParen {
		if p.keyword("DISTINCT") {
			fc.Distinct = true
		}
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, a)
			if p.peek().Kind != sqltext.KindComma {
				break
			}
			p.pos++
		}
	}
	if _, err := p.expect(sqltext.KindRParen); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) caseExpr() (sqlast.Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	ce := &sqlast.CaseExpr{}
	for p.keyword("WHEN") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, sqlast.CaseWhen{When: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		t := p.peek()
		return nil, &Error{Pos: t.Pos, Msg: "CASE requires at least one WHEN arm"}
	}
	if p.keyword("ELSE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

// ----------------------------------------------------------------------------
// DDL / DML

func (p *parser) createTable() (sqlast.Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct := &sqlast.CreateTableStmt{Name: name}
	if _, err := p.expect(sqltext.KindLParen); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.keyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(sqltext.KindLParen); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, col)
				if p.peek().Kind != sqltext.KindComma {
					break
				}
				p.pos++
			}
			if _, err := p.expect(sqltext.KindRParen); err != nil {
				return nil, err
			}
		case p.keyword("FOREIGN"):
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(sqltext.KindLParen); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sqltext.KindRParen); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sqltext.KindLParen); err != nil {
				return nil, err
			}
			refCol, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sqltext.KindRParen); err != nil {
				return nil, err
			}
			ct.ForeignKeys = append(ct.ForeignKeys, sqlast.ForeignKey{Column: col, RefTable: ref, RefColumn: refCol})
		default:
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			typTok := p.peek()
			if typTok.Kind != sqltext.KindKeyword && typTok.Kind != sqltext.KindIdent {
				return nil, &Error{Pos: typTok.Pos, Msg: fmt.Sprintf("expected column type, found %s", typTok)}
			}
			p.pos++
			typ := strings.ToUpper(typTok.Text)
			// Swallow VARCHAR(255)-style size arguments.
			if p.peek().Kind == sqltext.KindLParen {
				p.pos++
				if _, err := p.expect(sqltext.KindNumber); err != nil {
					return nil, err
				}
				if _, err := p.expect(sqltext.KindRParen); err != nil {
					return nil, err
				}
			}
			ct.Columns = append(ct.Columns, sqlast.ColumnDef{Name: colName, Type: typ})
		}
		if p.peek().Kind != sqltext.KindComma {
			break
		}
		p.pos++
	}
	if _, err := p.expect(sqltext.KindRParen); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) insert() (sqlast.Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &sqlast.InsertStmt{Table: name}
	if p.peek().Kind == sqltext.KindLParen {
		p.pos++
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.peek().Kind != sqltext.KindComma {
				break
			}
			p.pos++
		}
		if _, err := p.expect(sqltext.KindRParen); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(sqltext.KindLParen); err != nil {
			return nil, err
		}
		var row []sqlast.Expr
		for {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.peek().Kind != sqltext.KindComma {
				break
			}
			p.pos++
		}
		if _, err := p.expect(sqltext.KindRParen); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.peek().Kind != sqltext.KindComma {
			break
		}
		p.pos++
	}
	return ins, nil
}
