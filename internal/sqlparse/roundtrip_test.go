package sqlparse

import (
	"fmt"
	"math/rand"
	"testing"

	"fisql/internal/sqlast"
)

// Property: for every AST the generator below can produce,
// Parse(Print(ast)) prints back identically. This pins the printer and
// parser as exact inverses over the dialect the benchmarks use.

type astGen struct {
	rng   *rand.Rand
	depth int
}

func (g *astGen) ident(prefix string) string {
	return fmt.Sprintf("%s%d", prefix, g.rng.Intn(5))
}

func (g *astGen) expr() sqlast.Expr {
	if g.depth > 3 {
		return g.leaf()
	}
	g.depth++
	defer func() { g.depth-- }()
	switch g.rng.Intn(10) {
	case 0:
		return &sqlast.Binary{Op: g.cmpOp(), L: g.leaf(), R: g.leaf()}
	case 1:
		return &sqlast.Binary{Op: sqlast.OpAnd, L: g.boolExpr(), R: g.boolExpr()}
	case 2:
		return &sqlast.Binary{Op: sqlast.OpOr, L: g.boolExpr(), R: g.boolExpr()}
	case 3:
		return &sqlast.Binary{Op: g.arithOp(), L: g.leaf(), R: g.leaf()}
	case 4:
		return &sqlast.FuncCall{Name: "COUNT", Star: true}
	case 5:
		return &sqlast.FuncCall{
			Name:     []string{"SUM", "AVG", "MIN", "MAX"}[g.rng.Intn(4)],
			Distinct: g.rng.Intn(4) == 0,
			Args:     []sqlast.Expr{g.column()},
		}
	case 6:
		return &sqlast.InExpr{X: g.column(), Not: g.rng.Intn(2) == 0,
			List: []sqlast.Expr{g.literal(), g.literal()}}
	case 7:
		return &sqlast.BetweenExpr{X: g.column(), Not: g.rng.Intn(2) == 0,
			Lo: g.literal(), Hi: g.literal()}
	case 8:
		return &sqlast.LikeExpr{X: g.column(), Not: g.rng.Intn(2) == 0,
			Pattern: sqlast.Str("A%")}
	default:
		return &sqlast.IsNullExpr{X: g.column(), Not: g.rng.Intn(2) == 0}
	}
}

func (g *astGen) boolExpr() sqlast.Expr {
	return &sqlast.Binary{Op: g.cmpOp(), L: g.column(), R: g.literal()}
}

func (g *astGen) leaf() sqlast.Expr {
	if g.rng.Intn(2) == 0 {
		return g.column()
	}
	return g.literal()
}

func (g *astGen) column() *sqlast.ColumnRef {
	cr := &sqlast.ColumnRef{Column: g.ident("col")}
	if g.rng.Intn(3) == 0 {
		cr.Table = g.ident("t")
	}
	return cr
}

func (g *astGen) literal() *sqlast.Literal {
	switch g.rng.Intn(4) {
	case 0:
		return sqlast.Num(fmt.Sprint(g.rng.Intn(1000)))
	case 1:
		return sqlast.Num(fmt.Sprintf("%d.%d", g.rng.Intn(100), 1+g.rng.Intn(9)))
	case 2:
		return sqlast.Str(fmt.Sprintf("v%d", g.rng.Intn(100)))
	default:
		return sqlast.Bool(g.rng.Intn(2) == 0)
	}
}

func (g *astGen) cmpOp() sqlast.BinaryOp {
	return []sqlast.BinaryOp{sqlast.OpEq, sqlast.OpNeq, sqlast.OpLt,
		sqlast.OpLte, sqlast.OpGt, sqlast.OpGte}[g.rng.Intn(6)]
}

func (g *astGen) arithOp() sqlast.BinaryOp {
	return []sqlast.BinaryOp{sqlast.OpAdd, sqlast.OpSub, sqlast.OpMul,
		sqlast.OpDiv, sqlast.OpMod}[g.rng.Intn(5)]
}

func (g *astGen) selectStmt(allowCompound bool) *sqlast.SelectStmt {
	sel := &sqlast.SelectStmt{Distinct: g.rng.Intn(4) == 0}
	nItems := 1 + g.rng.Intn(3)
	for i := 0; i < nItems; i++ {
		item := sqlast.SelectItem{Expr: g.expr()}
		if g.rng.Intn(4) == 0 {
			item.Alias = g.ident("a")
		}
		sel.Items = append(sel.Items, item)
	}
	sel.From = &sqlast.FromClause{First: sqlast.TableSource{Name: g.ident("t")}}
	if g.rng.Intn(3) == 0 {
		jt := []sqlast.JoinType{sqlast.JoinInner, sqlast.JoinLeft}[g.rng.Intn(2)]
		sel.From.Joins = append(sel.From.Joins, sqlast.Join{
			Type:   jt,
			Source: sqlast.TableSource{Name: g.ident("u"), Alias: g.ident("al")},
			On:     g.boolExpr(),
		})
	}
	if g.rng.Intn(2) == 0 {
		sel.Where = g.boolExpr()
	}
	if g.rng.Intn(4) == 0 {
		sel.GroupBy = []sqlast.Expr{g.column()}
		if g.rng.Intn(2) == 0 {
			sel.Having = &sqlast.Binary{Op: sqlast.OpGt,
				L: &sqlast.FuncCall{Name: "COUNT", Star: true}, R: sqlast.Num("1")}
		}
	}
	if g.rng.Intn(3) == 0 {
		sel.OrderBy = []sqlast.OrderItem{{Expr: g.column(), Desc: g.rng.Intn(2) == 0}}
	}
	if g.rng.Intn(4) == 0 {
		sel.Limit = sqlast.Num(fmt.Sprint(1 + g.rng.Intn(50)))
		if g.rng.Intn(3) == 0 {
			sel.Offset = sqlast.Num(fmt.Sprint(g.rng.Intn(20)))
		}
	}
	if allowCompound && g.rng.Intn(5) == 0 {
		right := g.selectStmt(false)
		// ORDER BY / LIMIT live on the compound head only.
		right.OrderBy, right.Limit, right.Offset = nil, nil, nil
		op := []sqlast.SetOp{sqlast.SetUnion, sqlast.SetUnionAll,
			sqlast.SetIntersect, sqlast.SetExcept}[g.rng.Intn(4)]
		sel.Compound = &sqlast.Compound{Op: op, Right: right}
	}
	return sel
}

func TestPropertyPrintParseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := &astGen{rng: rng}
	for i := 0; i < 2000; i++ {
		sel := g.selectStmt(true)
		printed := sqlast.Print(sel)
		parsed, err := ParseSelect(printed)
		if err != nil {
			t.Fatalf("iteration %d: printed SQL fails to parse: %v\nSQL: %s", i, err, printed)
		}
		reprinted := sqlast.Print(parsed)
		if reprinted != printed {
			t.Fatalf("iteration %d: roundtrip not a fixpoint:\n first: %s\nsecond: %s", i, printed, reprinted)
		}
	}
}

func TestPropertyCloneIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	g := &astGen{rng: rng}
	for i := 0; i < 500; i++ {
		sel := g.selectStmt(true)
		if !sqlast.EqualSelect(sel, sqlast.CloneSelect(sel)) {
			t.Fatalf("iteration %d: clone differs from original:\n%s", i, sqlast.Print(sel))
		}
	}
}
