package sqlparse

import (
	"strings"
	"testing"

	"fisql/internal/sqlast"
)

// roundtrip parses src and returns the canonical printed form.
func roundtrip(t *testing.T, src string) string {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return sqlast.Print(stmt)
}

func TestParseRoundtrips(t *testing.T) {
	// Each case maps input SQL to its canonical printed form (empty want
	// means the input is already canonical).
	tests := []struct {
		src  string
		want string
	}{
		{"SELECT * FROM singer", ""},
		{"SELECT name, age FROM singer", ""},
		{"SELECT DISTINCT country FROM singer", ""},
		{"SELECT COUNT(*) FROM singer", ""},
		{"SELECT COUNT(DISTINCT country) FROM singer", ""},
		{"SELECT name AS n FROM singer", ""},
		{"SELECT singer.* FROM singer", ""},
		{"SELECT name FROM singer WHERE age > 20", ""},
		{"SELECT name FROM singer WHERE age > 20 AND country = 'US'", ""},
		{"SELECT name FROM singer WHERE age BETWEEN 20 AND 30", ""},
		{"SELECT name FROM singer WHERE age NOT BETWEEN 20 AND 30", ""},
		{"SELECT name FROM singer WHERE name LIKE 'A%'", ""},
		{"SELECT name FROM singer WHERE name NOT LIKE 'A%'", ""},
		{"SELECT name FROM singer WHERE country IN ('US', 'UK')", ""},
		{"SELECT name FROM singer WHERE country NOT IN ('US', 'UK')", ""},
		{"SELECT name FROM singer WHERE age IS NULL", ""},
		{"SELECT name FROM singer WHERE age IS NOT NULL", ""},
		{"SELECT name FROM singer WHERE NOT age > 20", ""},
		{"SELECT COUNT(*) FROM singer GROUP BY country", ""},
		{"SELECT country, COUNT(*) FROM singer GROUP BY country HAVING COUNT(*) > 1", ""},
		{"SELECT name FROM singer ORDER BY age ASC", ""},
		{"SELECT name FROM singer ORDER BY age DESC", ""},
		{"SELECT name FROM singer ORDER BY age DESC, name ASC", ""},
		{"SELECT name FROM singer LIMIT 5", ""},
		{"SELECT name FROM singer LIMIT 5 OFFSET 10", ""},
		{"SELECT s.name FROM singer AS s JOIN concert AS c ON s.id = c.singer_id", ""},
		{"SELECT s.name FROM singer AS s LEFT JOIN concert AS c ON s.id = c.singer_id", ""},
		{"SELECT name FROM singer WHERE age = (SELECT MIN(age) FROM singer)", ""},
		{"SELECT name FROM singer WHERE id IN (SELECT singer_id FROM concert)", ""},
		{"SELECT name FROM singer WHERE EXISTS (SELECT 1 FROM concert WHERE concert.singer_id = singer.id)", ""},
		{"SELECT name FROM singer UNION SELECT name FROM band", ""},
		{"SELECT name FROM singer INTERSECT SELECT name FROM band", ""},
		{"SELECT name FROM singer EXCEPT SELECT name FROM band", ""},
		{"SELECT age + 1 FROM singer", ""},
		{"SELECT age * 2 - 1 FROM singer", ""},
		{"SELECT CASE WHEN age > 18 THEN 'adult' ELSE 'minor' END FROM singer", ""},
		// Non-canonical inputs.
		{"select name from singer where age<>3", "SELECT name FROM singer WHERE age != 3"},
		{"SELECT name FROM singer ORDER BY age", "SELECT name FROM singer ORDER BY age ASC"},
		{"SELECT   name\nFROM singer;", "SELECT name FROM singer"},
		{"SELECT name n FROM singer s", "SELECT name AS n FROM singer AS s"},
		{"SELECT name FROM singer INNER JOIN concert ON singer.id = concert.singer_id",
			"SELECT name FROM singer JOIN concert ON singer.id = concert.singer_id"},
		{"SELECT name FROM a, b", "SELECT name FROM a CROSS JOIN b"},
		{"SELECT * FROM (SELECT name FROM singer) AS t", ""},
	}
	for _, tc := range tests {
		want := tc.want
		if want == "" {
			want = tc.src
		}
		if got := roundtrip(t, tc.src); got != want {
			t.Errorf("roundtrip(%q)\n got %q\nwant %q", tc.src, got, want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{"SELECT 1 + 2 * 3", "SELECT 1 + 2 * 3"},
		{"SELECT (1 + 2) * 3", "SELECT (1 + 2) * 3"},
		{"SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3",
			"SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3"},
		{"SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3",
			"SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3"},
	}
	for _, tc := range tests {
		if got := roundtrip(t, tc.src); got != tc.want {
			t.Errorf("%q: got %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t ORDER age",
		"FROB x",
		"SELECT * FROM t; SELECT",
		"SELECT a FROM t WHERE a IN 1",
		"SELECT a b c FROM t",
		"SELECT CASE END FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseSelectRejectsDDL(t *testing.T) {
	if _, err := ParseSelect("CREATE TABLE t (x INT)"); err == nil {
		t.Fatal("expected error for non-SELECT")
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse("CREATE TABLE singer (id INT, name TEXT, age INT, salary REAL, active BOOL, PRIMARY KEY (id), FOREIGN KEY (band_id) REFERENCES band(id))")
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*sqlast.CreateTableStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Name != "singer" || len(ct.Columns) != 5 {
		t.Fatalf("bad create: %+v", ct)
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "id" {
		t.Errorf("primary key: %v", ct.PrimaryKey)
	}
	if len(ct.ForeignKeys) != 1 || ct.ForeignKeys[0].RefTable != "band" {
		t.Errorf("foreign keys: %v", ct.ForeignKeys)
	}
}

func TestParseCreateTableVarcharSize(t *testing.T) {
	stmt, err := Parse("CREATE TABLE t (name VARCHAR(255))")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*sqlast.CreateTableStmt)
	if ct.Columns[0].Type != "VARCHAR" {
		t.Errorf("type: %q", ct.Columns[0].Type)
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO singer (id, name) VALUES (1, 'Joe'), (2, 'Ann')")
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := stmt.(*sqlast.InsertStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ins.Table != "singer" || len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("bad insert: %+v", ins)
	}
}

func TestParseInsertNegativeNumber(t *testing.T) {
	stmt, err := Parse("INSERT INTO t VALUES (-5)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*sqlast.InsertStmt)
	if _, ok := ins.Rows[0][0].(*sqlast.Unary); !ok {
		t.Errorf("got %T, want unary negation", ins.Rows[0][0])
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseUnionChain(t *testing.T) {
	sel, err := ParseSelect("SELECT a FROM t UNION SELECT b FROM u UNION ALL SELECT c FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Compound == nil || sel.Compound.Right.Compound == nil {
		t.Fatal("compound chain not built")
	}
	if sel.Compound.Op != sqlast.SetUnion || sel.Compound.Right.Compound.Op != sqlast.SetUnionAll {
		t.Errorf("ops: %v, %v", sel.Compound.Op, sel.Compound.Right.Compound.Op)
	}
}

func TestParseOrderByAppliesAfterUnion(t *testing.T) {
	sel, err := ParseSelect("SELECT a FROM t UNION SELECT b FROM u ORDER BY a DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order by: %+v", sel.OrderBy)
	}
	if sel.Limit == nil {
		t.Error("limit missing")
	}
	if sel.Compound == nil {
		t.Error("compound missing")
	}
}

func TestParseDeepNesting(t *testing.T) {
	src := "SELECT name FROM s WHERE id IN (SELECT sid FROM c WHERE year = (SELECT MAX(year) FROM c))"
	if got := roundtrip(t, src); got != src {
		t.Errorf("got %q", got)
	}
}

func TestErrorMessagesIncludePosition(t *testing.T) {
	_, err := Parse("SELECT * FROM t WHERE ??")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error lacks position info: %v", err)
	}
}
