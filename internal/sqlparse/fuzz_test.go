package sqlparse

import (
	"testing"

	"fisql/internal/sqlast"
)

// FuzzParse checks the parser never panics and that anything it accepts
// prints to a fixpoint (print ∘ parse ∘ print = print).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT a, b FROM t WHERE x = 1 AND y LIKE 'a%'",
		"SELECT COUNT(*) FROM t GROUP BY g HAVING COUNT(*) > 2 ORDER BY 1 DESC LIMIT 5",
		"SELECT a FROM t WHERE b IN (SELECT c FROM u) UNION SELECT d FROM v",
		"SELECT CASE WHEN x > 0 THEN 'p' ELSE 'n' END FROM t",
		"CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (a))",
		"INSERT INTO t VALUES (1, 'x'), (2, NULL)",
		"SELECT '",
		"SELECT ((((",
		"SELECT a FROM t WHERE x BETWEEN 1 AND",
		"select distinct a.b from c as d left outer join e on d.f = e.g",
		"SELECT -1 + 2 * 3 / 4 % 5",
		"SELECT a FROM t WHERE NOT x IS NOT NULL",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := sqlast.Print(stmt)
		stmt2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejects its own print %q: %v", src, printed, err)
		}
		if got := sqlast.Print(stmt2); got != printed {
			t.Fatalf("print not a fixpoint:\n first: %q\nsecond: %q", printed, got)
		}
	})
}
