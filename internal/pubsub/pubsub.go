// Package pubsub is the session-event fanout hub: one topic per live
// session, each a bounded ring of sequenced events that any number of
// subscribers follow concurrently.
//
// The design point is that a subscriber can never slow down a publisher.
// Publish appends to the ring and pokes each subscriber's capacity-1 notify
// channel with a non-blocking send — O(subscribers) pointer work under one
// topic lock, no per-subscriber queue, no blocking sends. Subscribers pull
// at their own pace through a cursor into the shared ring; one that stalls
// long enough for the ring to lap its cursor does not stop the world — its
// cursor is jumped forward to the oldest retained event and the number of
// events it missed is recorded on the subscription (drop-and-mark), so the
// reader learns its view has a gap instead of silently losing turns.
//
// Sequence numbers start at 1 and increase by exactly 1 per event within a
// topic, which makes resumption trivial: a client that saw sequence N
// subscribes with after=N and receives N+1, N+2, ... — replayed from the
// ring if still retained, marked as missed if not. The hub itself assigns
// no meaning to event types or payloads; internal/server publishes exactly
// the lifecycle events it journals, which is what makes a rebuilt topic
// (crash recovery, cluster failover) reproduce the same sequence numbers
// for the same turns.
package pubsub

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// DefaultRingSize is the per-session ring capacity when the caller does not
// choose one. A turn publishes ~5 events, so the default retains roughly
// the last 50 turns for Last-Event-ID resumption — far past the point
// where a client should re-fetch /history instead.
const DefaultRingSize = 256

// ErrNoTopic reports a Subscribe against a session with no open topic
// (never created here, or already closed by delete/handoff).
var ErrNoTopic = errors.New("pubsub: no such topic")

// Payload is one event to publish: a type tag plus its wire bytes. Data
// must not be mutated after publishing — subscribers read it unsynchronized.
type Payload struct {
	Type string
	Data []byte
}

// Event is one sequenced event delivered to a subscriber.
type Event struct {
	Seq  uint64
	Type string
	Data []byte
}

// Stats is a snapshot of the hub's cumulative counters.
type Stats struct {
	// Published counts events appended across all topics.
	Published int64
	// Dropped counts events subscribers missed because the ring lapped
	// their cursor (summed over subscribers: one lapped event missed by two
	// subscribers counts twice).
	Dropped int64
	// Replays counts subscriptions that resumed from a prior position
	// (Subscribe with after > 0).
	Replays int64
	// Subscribers is the number of currently attached subscriptions.
	Subscribers int64
}

// Hub owns the per-session topics. The zero value is not usable; create
// with NewHub.
type Hub struct {
	ring int

	mu     sync.RWMutex
	topics map[string]*topic

	published   atomic.Int64
	dropped     atomic.Int64
	replays     atomic.Int64
	subscribers atomic.Int64

	// lagObs, when set, observes how many newer events remained buffered
	// after each delivery — the subscriber's backlog in events.
	lagObs atomic.Pointer[func(eventsBehind int64)]
}

// NewHub builds a hub whose topics retain up to ringSize events each
// (DefaultRingSize when ringSize <= 0).
func NewHub(ringSize int) *Hub {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Hub{ring: ringSize, topics: make(map[string]*topic)}
}

// SetLagObserver installs fn to observe each delivery's backlog (how many
// newer events the subscriber still has buffered). Safe to call
// concurrently with publishes.
func (h *Hub) SetLagObserver(fn func(eventsBehind int64)) {
	h.lagObs.Store(&fn)
}

// Stats snapshots the cumulative counters.
func (h *Hub) Stats() Stats {
	return Stats{
		Published:   h.published.Load(),
		Dropped:     h.dropped.Load(),
		Replays:     h.replays.Load(),
		Subscribers: h.subscribers.Load(),
	}
}

// Open ensures a topic exists for the session. Reopening an existing topic
// is a no-op; reopening a closed one starts a fresh topic at sequence 1
// (the server only does this when the session id itself is being reused,
// which the id watermark prevents for journaled serving).
func (h *Hub) Open(session string) {
	h.mu.Lock()
	if _, ok := h.topics[session]; !ok {
		h.topics[session] = &topic{ring: h.ring, nextSeq: 1}
	}
	h.mu.Unlock()
}

// Publish appends the payloads to the session's topic as one atomic batch —
// subscribers never observe a gap inside the batch, and no other publisher
// (a concurrent delete) can interleave into it. Returns the sequence number
// of the last event published, or 0 when the topic does not exist (already
// closed, or never opened): publishing to a dead session is a deliberate
// no-op so a turn racing a delete cannot resurrect its event stream.
func (h *Hub) Publish(session string, events ...Payload) uint64 {
	if len(events) == 0 {
		return 0
	}
	h.mu.RLock()
	t := h.topics[session]
	h.mu.RUnlock()
	if t == nil {
		return 0
	}
	last := t.publish(events)
	if last > 0 {
		h.published.Add(int64(len(events)))
	}
	return last
}

// Subscribe attaches a subscriber to the session's topic, positioned just
// after sequence number `after` (0 subscribes from the oldest retained
// event). A position the ring no longer retains is clamped forward and the
// gap is reported through the subscription's Missed accounting, exactly as
// a live lap would be.
func (h *Hub) Subscribe(session string, after uint64) (*Subscription, error) {
	h.mu.RLock()
	t := h.topics[session]
	h.mu.RUnlock()
	if t == nil {
		return nil, ErrNoTopic
	}
	sub, ok := t.subscribe(h, after)
	if !ok {
		return nil, ErrNoTopic
	}
	h.subscribers.Add(1)
	if after > 0 {
		h.replays.Add(1)
	}
	return sub, nil
}

// CloseTopic ends the session's topic: subscribers drain whatever the ring
// still holds, then their Next returns ok=false. Publishing to a closed
// topic is a no-op. Closing an absent topic is a no-op.
func (h *Hub) CloseTopic(session string) {
	h.mu.Lock()
	t := h.topics[session]
	delete(h.topics, session)
	h.mu.Unlock()
	if t != nil {
		t.close()
	}
}

// Topics reports the number of open topics.
func (h *Hub) Topics() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.topics)
}

// ---------------------------------------------------------------------------

// topic is one session's event ring plus its subscribers. buf is a circular
// buffer: head indexes the oldest retained event, count is the number
// retained, and the event at sequence q (firstSeq <= q < nextSeq, where
// firstSeq = nextSeq-count) lives at buf[(head + q - firstSeq) % len(buf)].
type topic struct {
	ring int

	mu      sync.Mutex
	buf     []Event
	head    int
	count   int
	nextSeq uint64
	subs    map[*Subscription]struct{}
	closed  bool
}

func (t *topic) publish(events []Payload) (last uint64) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return 0
	}
	if t.buf == nil {
		n := len(events)
		if n < 8 {
			n = 8
		}
		if n > t.ring {
			n = t.ring
		}
		t.buf = make([]Event, n)
	}
	for _, ev := range events {
		if t.count == len(t.buf) && t.count < t.ring {
			t.grow()
		}
		if t.count == len(t.buf) {
			// Ring full: overwrite the oldest. Subscribers still behind it
			// discover the lap in Next and take the miss there.
			t.head = (t.head + 1) % len(t.buf)
			t.count--
		}
		t.buf[(t.head+t.count)%len(t.buf)] = Event{Seq: t.nextSeq, Type: ev.Type, Data: ev.Data}
		t.nextSeq++
		t.count++
	}
	last = t.nextSeq - 1
	for sub := range t.subs {
		sub.notifyLocked()
	}
	t.mu.Unlock()
	return last
}

// grow doubles the circular buffer up to the ring cap, relinearizing so
// head restarts at 0. Caller holds t.mu.
func (t *topic) grow() {
	n := 2 * len(t.buf)
	if n > t.ring {
		n = t.ring
	}
	nb := make([]Event, n)
	for i := 0; i < t.count; i++ {
		nb[i] = t.buf[(t.head+i)%len(t.buf)]
	}
	t.buf, t.head = nb, 0
}

func (t *topic) subscribe(h *Hub, after uint64) (*Subscription, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, false
	}
	sub := &Subscription{
		h:      h,
		t:      t,
		next:   after + 1,
		notify: make(chan struct{}, 1),
	}
	firstSeq := t.nextSeq - uint64(t.count)
	if sub.next < firstSeq {
		// The requested resume point has already left the ring: clamp
		// forward and mark the gap, same as a live lap.
		gap := firstSeq - sub.next
		sub.missed += gap
		h.dropped.Add(int64(gap))
		sub.next = firstSeq
	}
	if sub.next > t.nextSeq {
		// A position from the future (a client replaying a stale id against
		// a rebuilt topic) delivers only what actually gets published.
		sub.next = t.nextSeq
	}
	if t.subs == nil {
		t.subs = make(map[*Subscription]struct{})
	}
	t.subs[sub] = struct{}{}
	return sub, true
}

func (t *topic) close() {
	t.mu.Lock()
	t.closed = true
	for sub := range t.subs {
		sub.notifyLocked()
	}
	t.mu.Unlock()
}

// ---------------------------------------------------------------------------

// Subscription is one subscriber's cursor into a topic. Next is not safe
// for concurrent use by multiple goroutines; everything else is.
type Subscription struct {
	h *Hub
	t *topic

	// Guarded by t.mu.
	next     uint64 // sequence number of the next event to deliver
	missed   uint64 // events lapped past this cursor, not yet taken
	canceled bool

	// notify has capacity 1: a publisher's non-blocking send either parks a
	// token or finds one already parked — either way Next wakes and re-reads
	// the ring, so no publish is ever lost and no publisher ever blocks.
	notify chan struct{}
}

// notifyLocked pokes the subscriber. Caller holds t.mu.
func (s *Subscription) notifyLocked() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next blocks until an event is available, the topic closes, the context is
// done, or the subscription is canceled. missed is the number of events
// lapped past this cursor since the previous delivery — captured atomically
// with the delivered event, so ev.Seq always equals (previous ev.Seq) +
// missed + 1. ok=false means no more events will ever be delivered
// (closed/done/canceled); the ring's remaining events are always drained
// before a close is reported.
func (s *Subscription) Next(ctx context.Context) (ev Event, missed uint64, ok bool) {
	t := s.t
	for {
		t.mu.Lock()
		if s.canceled {
			t.mu.Unlock()
			return Event{}, 0, false
		}
		firstSeq := t.nextSeq - uint64(t.count)
		if s.next < firstSeq {
			gap := firstSeq - s.next
			s.missed += gap
			s.h.dropped.Add(int64(gap))
			s.next = firstSeq
		}
		if s.next < t.nextSeq {
			ev = t.buf[(t.head+int(s.next-firstSeq))%len(t.buf)]
			missed, s.missed = s.missed, 0
			s.next++
			lag := int64(t.nextSeq - s.next)
			t.mu.Unlock()
			if fn := s.h.lagObs.Load(); fn != nil {
				(*fn)(lag)
			}
			return ev, missed, true
		}
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return Event{}, 0, false
		}
		select {
		case <-ctx.Done():
			return Event{}, 0, false
		case <-s.notify:
		}
	}
}

// Cancel detaches the subscription; a concurrent or later Next returns
// ok=false. Idempotent.
func (s *Subscription) Cancel() {
	t := s.t
	t.mu.Lock()
	if s.canceled {
		t.mu.Unlock()
		return
	}
	s.canceled = true
	delete(t.subs, s)
	s.notifyLocked()
	t.mu.Unlock()
	s.h.subscribers.Add(-1)
}
