package pubsub

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func pay(i int) Payload {
	return Payload{Type: "ev", Data: []byte(fmt.Sprintf(`{"n":%d}`, i))}
}

// collect drains up to n events (returning early on stream end) along with
// the total missed count reported across the deliveries.
func collect(t *testing.T, sub *Subscription, n int) ([]Event, uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var out []Event
	var missed uint64
	for len(out) < n {
		ev, m, ok := sub.Next(ctx)
		if !ok {
			break
		}
		missed += m
		out = append(out, ev)
	}
	return out, missed
}

func TestPublishSubscribeOrder(t *testing.T) {
	h := NewHub(64)
	h.Open("s1")
	sub, err := h.Subscribe("s1", 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Cancel()
	for i := 1; i <= 10; i++ {
		if last := h.Publish("s1", pay(i)); last != uint64(i) {
			t.Fatalf("publish %d returned seq %d", i, last)
		}
	}
	evs, missed := collect(t, sub, 10)
	if len(evs) != 10 {
		t.Fatalf("got %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		if want := fmt.Sprintf(`{"n":%d}`, i+1); string(ev.Data) != want {
			t.Errorf("event %d data = %s, want %s", i, ev.Data, want)
		}
	}
	if missed != 0 {
		t.Errorf("missed = %d, want 0", missed)
	}
}

func TestBatchPublishIsAtomic(t *testing.T) {
	h := NewHub(64)
	h.Open("s1")
	last := h.Publish("s1", pay(1), pay(2), pay(3))
	if last != 3 {
		t.Fatalf("batch publish returned %d, want 3", last)
	}
	sub, err := h.Subscribe("s1", 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Cancel()
	evs, _ := collect(t, sub, 3)
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("seq %d at index %d", ev.Seq, i)
		}
	}
}

func TestPublishWithoutTopicIsNoop(t *testing.T) {
	h := NewHub(64)
	if last := h.Publish("ghost", pay(1)); last != 0 {
		t.Fatalf("publish to missing topic returned %d, want 0", last)
	}
	if _, err := h.Subscribe("ghost", 0); err != ErrNoTopic {
		t.Fatalf("subscribe to missing topic: err = %v, want ErrNoTopic", err)
	}
	if got := h.Stats().Published; got != 0 {
		t.Fatalf("published = %d, want 0", got)
	}
}

func TestSlowSubscriberDropAndMark(t *testing.T) {
	h := NewHub(4)
	h.Open("s1")
	sub, err := h.Subscribe("s1", 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Cancel()
	// 10 events through a 4-slot ring with a reader that never ran: the
	// ring retains 7..10, so 1..6 are lapped past the cursor.
	for i := 1; i <= 10; i++ {
		h.Publish("s1", pay(i))
	}
	evs, missed := collect(t, sub, 4)
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("events = %+v, want seqs 7..10", evs)
	}
	if missed != 6 {
		t.Errorf("missed = %d, want 6", missed)
	}
	if d := h.Stats().Dropped; d != 6 {
		t.Errorf("hub dropped = %d, want 6", d)
	}
}

func TestResumeFromSeq(t *testing.T) {
	h := NewHub(64)
	h.Open("s1")
	for i := 1; i <= 8; i++ {
		h.Publish("s1", pay(i))
	}
	sub, err := h.Subscribe("s1", 5)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Cancel()
	evs, missed := collect(t, sub, 3)
	if len(evs) != 3 || evs[0].Seq != 6 || evs[2].Seq != 8 {
		t.Fatalf("resume from 5: events %+v, want seqs 6..8", evs)
	}
	if missed != 0 {
		t.Errorf("missed = %d, want 0", missed)
	}
	if r := h.Stats().Replays; r != 1 {
		t.Errorf("replays = %d, want 1", r)
	}
}

func TestResumePastRingMarksGap(t *testing.T) {
	h := NewHub(4)
	h.Open("s1")
	for i := 1; i <= 10; i++ {
		h.Publish("s1", pay(i))
	}
	// Resume point 2 left the ring long ago (ring holds 7..10): the first
	// delivery must carry the 4-event gap (seqs 3..6).
	sub, err := h.Subscribe("s1", 2)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Cancel()
	evs, missed := collect(t, sub, 4)
	if len(evs) != 4 || evs[0].Seq != 7 {
		t.Fatalf("events %+v, want seqs 7..10", evs)
	}
	if missed != 4 {
		t.Errorf("missed = %d, want 4 (seqs 3..6)", missed)
	}
}

func TestResumeFromFutureClampsToLive(t *testing.T) {
	h := NewHub(16)
	h.Open("s1")
	h.Publish("s1", pay(1))
	sub, err := h.Subscribe("s1", 99)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Cancel()
	h.Publish("s1", pay(2))
	evs, _ := collect(t, sub, 1)
	if len(evs) != 1 || evs[0].Seq != 2 {
		t.Fatalf("future resume delivered %+v, want just seq 2", evs)
	}
}

func TestCloseTopicDrainsThenEnds(t *testing.T) {
	h := NewHub(16)
	h.Open("s1")
	h.Publish("s1", pay(1), pay(2))
	sub, err := h.Subscribe("s1", 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	h.CloseTopic("s1")
	ctx := context.Background()
	var seqs []uint64
	for {
		ev, _, ok := sub.Next(ctx)
		if !ok {
			break
		}
		seqs = append(seqs, ev.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("drained seqs = %v, want [1 2]", seqs)
	}
	if h.Topics() != 0 {
		t.Errorf("topics = %d after close, want 0", h.Topics())
	}
	if last := h.Publish("s1", pay(3)); last != 0 {
		t.Errorf("publish after close returned %d, want 0", last)
	}
}

func TestCancelWakesBlockedNext(t *testing.T) {
	h := NewHub(16)
	h.Open("s1")
	sub, err := h.Subscribe("s1", 0)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	done := make(chan bool, 1)
	go func() {
		_, _, ok := sub.Next(context.Background())
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned ok=true after Cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake after Cancel")
	}
	if got := h.Stats().Subscribers; got != 0 {
		t.Errorf("subscribers = %d, want 0", got)
	}
	sub.Cancel() // idempotent
	if got := h.Stats().Subscribers; got != 0 {
		t.Errorf("subscribers after double cancel = %d, want 0", got)
	}
}

func TestLagObserver(t *testing.T) {
	h := NewHub(16)
	var maxLag atomic.Int64
	h.SetLagObserver(func(lag int64) {
		for {
			cur := maxLag.Load()
			if lag <= cur || maxLag.CompareAndSwap(cur, lag) {
				return
			}
		}
	})
	h.Open("s1")
	sub, _ := h.Subscribe("s1", 0)
	defer sub.Cancel()
	h.Publish("s1", pay(1), pay(2), pay(3))
	collect(t, sub, 3)
	// First delivery left 2 newer events buffered.
	if got := maxLag.Load(); got != 2 {
		t.Errorf("max observed lag = %d, want 2", got)
	}
}

// TestConcurrentHammer exercises subscribe/publish/unsubscribe races under
// -race: per-subscriber delivered sequences must be strictly increasing and
// contiguous except across reported gaps.
func TestConcurrentHammer(t *testing.T) {
	const (
		sessions    = 8
		publishers  = 4
		perPub      = 200
		subscribers = 16
	)
	h := NewHub(32)
	for i := 0; i < sessions; i++ {
		h.Open(fmt.Sprintf("s%d", i))
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup

	// Churning subscribers: subscribe, read a while, cancel, resubscribe
	// from the last seen position.
	var violations atomic.Int64
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := fmt.Sprintf("s%d", i%sessions)
			var last uint64
			for ctx.Err() == nil {
				sub, err := h.Subscribe(sess, last)
				if err != nil {
					return
				}
				for j := 0; j < 50; j++ {
					ev, missed, ok := sub.Next(ctx)
					if !ok {
						break
					}
					if ev.Seq != last+missed+1 {
						violations.Add(1)
					}
					last = ev.Seq
				}
				sub.Cancel()
			}
		}(i)
	}

	var pwg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perPub; i++ {
				sess := fmt.Sprintf("s%d", (p+i)%sessions)
				h.Publish(sess, pay(i), pay(i))
			}
		}(p)
	}
	pwg.Wait()
	for i := 0; i < sessions; i++ {
		h.CloseTopic(fmt.Sprintf("s%d", i))
	}
	cancel()
	wg.Wait()

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d sequence violations (non-monotonic or unreported gap)", v)
	}
	st := h.Stats()
	if want := int64(publishers * perPub * 2); st.Published != want {
		t.Errorf("published = %d, want %d", st.Published, want)
	}
	if st.Subscribers != 0 {
		t.Errorf("subscribers = %d after shutdown, want 0", st.Subscribers)
	}
}

func TestRingGrowsLazily(t *testing.T) {
	h := NewHub(1024)
	h.Open("s1")
	// A single publish must not allocate the full ring up front.
	h.Publish("s1", pay(1))
	h.mu.RLock()
	tp := h.topics["s1"]
	h.mu.RUnlock()
	tp.mu.Lock()
	n := len(tp.buf)
	tp.mu.Unlock()
	if n >= 1024 {
		t.Fatalf("ring allocated %d slots for one event", n)
	}
	for i := 2; i <= 1500; i++ {
		h.Publish("s1", pay(i))
	}
	sub, _ := h.Subscribe("s1", 0)
	defer sub.Cancel()
	evs, _ := collect(t, sub, 1024)
	if len(evs) != 1024 || evs[0].Seq != 477 || evs[1023].Seq != 1500 {
		t.Fatalf("ring retained %d events, first %d last %d; want 1024, 477, 1500",
			len(evs), evs[0].Seq, evs[len(evs)-1].Seq)
	}
}
