// Multi-round correction on SPIDER errors: reproduce a slice of the
// paper's Figure 8 protocol programmatically — collect Assistant errors,
// let the simulated annotator give feedback, and watch FISQL versus the
// Query-Rewrite baseline over two rounds.
package main

import (
	"context"
	"fmt"
	"log"

	"fisql"
	"fisql/internal/eval"
)

func main() {
	log.SetFlags(0)
	sys, err := fisql.NewSpiderSystem()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Step 1: run the retrieval-augmented Assistant over the corpus and
	// keep the failures (the paper's §4.1 error collection).
	results, acc, err := eval.RunGeneration(ctx, sys.Client, sys.DS, sys.K)
	if err != nil {
		log.Fatal(err)
	}
	errs := eval.Errors(results)
	fmt.Printf("Assistant one-shot accuracy: %s — %d errors collected\n\n", acc, len(errs))

	// Step 2: two feedback rounds with each method.
	for _, method := range []fisql.Corrector{
		sys.QueryRewrite(),
		sys.FISQL(fisql.Options{Routing: false}),
		sys.FISQL(fisql.Options{Routing: true}),
	} {
		res, err := eval.RunCorrection(ctx, method, sys.DS, errs,
			eval.CorrectionOptions{Rounds: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s n=%d  round1=%.2f%%  round2=%.2f%%\n",
			method.Name(), res.N, res.Pct(1), res.Pct(2))
	}

	// Step 3: zoom into one error and print the conversation.
	fmt.Println("\n== One corrected example, up close ==")
	annot := eval.NewAnnotator(sys.DS)
	fisqlMethod := sys.FISQL(fisql.Options{Routing: true})
	for _, ge := range errs {
		e := ge.Example
		fb, ok := annot.Annotate(e, ge.SQL, 1, false)
		if !ok {
			continue
		}
		next, err := fisqlMethod.Correct(ctx, e.DB, e.Question, ge.SQL, fb)
		if err != nil {
			log.Fatal(err)
		}
		if !eval.Match(sys.DS.DBs[e.DB], e.Gold, next) {
			continue
		}
		fmt.Printf("question: %s\n", e.Question)
		fmt.Printf("wrong:    %s\n", ge.SQL)
		fmt.Printf("feedback: %s\n", fb.Text)
		fmt.Printf("fixed:    %s\n", next)
		break
	}
}
