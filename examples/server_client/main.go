// REST round-trip: start the fisql HTTP server in-process, then drive the
// ask→feedback loop through the JSON API exactly as a web front-end would.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"fisql"
	"fisql/internal/server"
)

type sysAdapter struct{ *fisql.System }

func (a sysAdapter) NewSession(db string) *fisql.Session {
	return a.Session(db, fisql.Options{Routing: true, Highlights: true})
}

func main() {
	log.SetFlags(0)
	ae, err := fisql.NewExperiencePlatformSystem()
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(server.New(map[string]server.SessionFactory{
		"aep": sysAdapter{ae},
	}))
	defer srv.Close()
	fmt.Println("server at", srv.URL)

	// Create a session.
	var created struct {
		SessionID string `json:"session_id"`
		DB        string `json:"db"`
	}
	post(srv.URL+"/v1/sessions", map[string]string{"corpus": "aep"}, &created)
	fmt.Printf("session %s on %s\n\n", created.SessionID, created.DB)

	// Ask the Figure 4 question.
	var ans struct {
		SQL           string     `json:"sql"`
		Reformulation string     `json:"reformulation"`
		Rows          [][]string `json:"rows"`
	}
	base := srv.URL + "/v1/sessions/" + created.SessionID
	post(base+"/ask", map[string]string{"question": "How many audiences were created in January?"}, &ans)
	fmt.Println("ask:", ans.Reformulation)
	fmt.Println("  sql:", ans.SQL)

	// Send feedback.
	post(base+"/feedback", map[string]string{"text": "we are in 2024"}, &ans)
	fmt.Println("feedback applied:", ans.Reformulation)
	fmt.Println("  sql:", ans.SQL)
	if len(ans.Rows) > 0 {
		fmt.Println("  result:", ans.Rows[0])
	}

	// Read back the transcript.
	var hist struct {
		Turns []struct {
			Role string `json:"role"`
			Text string `json:"text"`
		} `json:"turns"`
	}
	get(base+"/history", &hist)
	fmt.Println("\ntranscript:")
	for _, t := range hist.Turns {
		fmt.Printf("  [%s] %s\n", t.Role, t.Text)
	}
}

func post(url string, body any, out any) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("http %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatalf("bad response %q: %v", data, err)
	}
}
