// Marketing analytics walkthrough on the closed-domain Experience-Platform
// corpus: closed-domain jargon ("audiences" are segments), a wrong-value
// filter fixed by grounding the feedback with a highlight (the paper's
// Figure 9 mechanism), and a schema tour.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"fisql"
)

func main() {
	log.SetFlags(0)
	sys, err := fisql.NewExperiencePlatformSystem()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("== Schema (what the Assistant sees) ==")
	fmt.Println(sys.DS.Schemas["experience_platform"].PromptText())

	sess := sys.Session("experience_platform", fisql.Options{Routing: true, Highlights: true})

	// 1. Closed-domain jargon: "audiences" means segments, but the naive
	// reading lands on the datasets table.
	fmt.Println("== Jargon misunderstanding ==")
	q := "How many audiences in the org do we have?"
	ans := must(sess.Ask(ctx, q))
	fmt.Printf("Q: %s\n  SQL: %s\n", q, ans.SQL)
	ans = must(sess.Feedback(ctx, "I meant the audiences, not the datasets", nil))
	fmt.Printf("after feedback:\n  SQL: %s\n  rows: %d\n\n", ans.SQL, rowCount(ans))

	// 2. Grounded feedback: a query that filters on two columns makes
	// value-only feedback ("the value should be X") ambiguous until the
	// user highlights the clause they mean. The corpus plants one such
	// example; find it and walk through the Figure 9 interaction.
	fmt.Println("== Highlight-grounded correction ==")
	for _, e := range sys.DS.Examples {
		if len(e.Traps) != 1 || !e.Traps[0].GroundingHard {
			continue
		}
		trap := e.Traps[0]
		sess2 := sys.Session("experience_platform", fisql.Options{Routing: true, Highlights: true})
		ans = must(sess2.Ask(ctx, e.Question))
		fmt.Printf("Q: %s\n  SQL: %s\n", e.Question, ans.SQL)

		fbText := fmt.Sprintf("the value should be '%s'", trap.New)
		// Without a highlight the edit lands on the wrong comparison.
		ungrounded := must(sess2.Feedback(ctx, fbText, nil))
		fmt.Printf("value-only feedback edits the wrong clause:\n  SQL: %s\n", ungrounded.SQL)

		// Highlight the comparison on the trap's column and retry.
		sess3 := sys.Session("experience_platform", fisql.Options{Routing: true, Highlights: true})
		must(sess3.Ask(ctx, e.Question))
		if idx := strings.Index(sess3.SQL(), trap.Column); idx >= 0 {
			seg := sess3.SQL()[idx:]
			hl := &fisql.Highlight{Start: idx, End: idx + len(seg), Text: seg}
			grounded := must(sess3.Feedback(ctx, fbText, hl))
			fmt.Printf("with the clause highlighted:\n  SQL: %s\n\n", grounded.SQL)
		}
		break
	}

	// 3. Regular analytics over activations.
	fmt.Println("== Activation analytics ==")
	sess3 := sys.Session("experience_platform", fisql.Options{Routing: true})
	for _, q := range []string{
		"For each channel, count the number of campaigns.",
		"What is the maximum delivered count of the activations?",
	} {
		ans := must(sess3.Ask(ctx, q))
		fmt.Printf("Q: %s\n  SQL: %s\n", q, ans.SQL)
		if ans.Result != nil && len(ans.Result.Rows) > 0 {
			fmt.Printf("  first row: %v\n", firstRow(ans))
		}
	}
}

func must(ans *fisql.Answer, err error) *fisql.Answer {
	if err != nil {
		log.Fatal(err)
	}
	return ans
}

func rowCount(ans *fisql.Answer) int {
	if ans.Result == nil {
		return 0
	}
	return len(ans.Result.Rows)
}

func firstRow(ans *fisql.Answer) []string {
	var out []string
	for _, v := range ans.Result.Rows[0] {
		out = append(out, v.String())
	}
	return out
}
