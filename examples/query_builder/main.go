// Incremental query building — the paper's §5 first future-work direction:
// "this tool could be adapted to allow users to build up complex SQL
// queries by asking simple questions first." Start from a trivial listing
// and layer filters, projections, ordering and limits one feedback line at
// a time, watching the SQL grow.
package main

import (
	"context"
	"fmt"
	"log"

	"fisql"
)

func main() {
	log.SetFlags(0)
	sys, err := fisql.NewSpiderSystem()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	// Dynamic demonstration selection (§5's second direction) is on, so
	// each refinement round carries the most relevant repair examples.
	sess := sys.Session("soccer", fisql.Options{Routing: true, DynamicDemos: 2})

	ans, err := sess.Ask(ctx, "List the player name of all players.")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("start:     ", ans.SQL)

	steps := []string{
		"also show the goals scored",
		"only count those with goals scored greater than 10",
		"sort the results by goals scored in descending order",
		"only show the top 3",
	}
	for _, step := range steps {
		ans, err = sess.Feedback(ctx, step, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("+ %q\n  -> %s\n", step, ans.SQL)
	}

	fmt.Println("\nfinal result:")
	if ans.Result != nil {
		fmt.Print(ans.Result.Format())
	}
}
