// Quickstart: build the Experience-Platform system, ask the paper's
// Figure 4 question, watch the Assistant misread the implicit year, then
// fix it with one line of feedback.
package main

import (
	"context"
	"fmt"
	"log"

	"fisql"
)

func main() {
	log.SetFlags(0)
	sys, err := fisql.NewExperiencePlatformSystem()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	sess := sys.Session("experience_platform", fisql.Options{Routing: true})

	ans, err := sess.Ask(ctx, "How many audiences were created in January?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q: How many audiences were created in January?")
	show(ans)

	fmt.Println("\nUser feedback: we are in 2024")
	ans, err = sess.Feedback(ctx, "we are in 2024", nil)
	if err != nil {
		log.Fatal(err)
	}
	show(ans)
}

func show(ans *fisql.Answer) {
	fmt.Println(" ", ans.Reformulation)
	for _, step := range ans.Explanation {
		fmt.Println("   -", step)
	}
	fmt.Println("  SQL:", ans.SQL)
	if ans.Result != nil {
		fmt.Print(indent(ans.Result.Format()))
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
