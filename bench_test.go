package fisql

// The benchmark harness regenerates every table and figure in the paper's
// evaluation (see EXPERIMENTS.md for the paper-vs-measured record):
//
//	BenchmarkFigure2ZeroShotAccuracy   — Figure 2
//	BenchmarkSection41ErrorCollection  — §4.1 statistics
//	BenchmarkTable2FeedbackCorrection  — Table 2
//	BenchmarkFigure8FeedbackRounds     — Figure 8
//	BenchmarkTable3Highlighting        — Table 3
//
// plus ablations DESIGN.md calls out (RAG depth, router-vs-naive
// classification, metric strictness) and microbenchmarks of the hot
// substrates. Headline metrics are attached via b.ReportMetric, so
// `go test -bench=. -benchmem` prints the paper's numbers alongside the
// timing columns.

import (
	"context"
	"flag"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"fisql/internal/dataset"
	"fisql/internal/dataset/aep"
	"fisql/internal/engine"
	"fisql/internal/eval"
	"fisql/internal/feedback"
	"fisql/internal/llm"
	"fisql/internal/rag"
	"fisql/internal/sqlparse"
)

// benchWorkers bounds the evaluation worker pool used by the experiment
// drivers (0 = GOMAXPROCS, 1 = serial). Results are identical for every
// value; only wall-clock changes.
var benchWorkers = flag.Int("workers", 0, "evaluation worker goroutines for the experiment benchmarks (0 = GOMAXPROCS, 1 = serial)")

func benchGenOpts() eval.RunOptions { return eval.RunOptions{Workers: *benchWorkers} }

var (
	benchOnce sync.Once
	benchSp   *System
	benchAep  *System
	benchErr  error
)

func benchWorld(b *testing.B) (*System, *System) {
	b.Helper()
	benchOnce.Do(func() {
		benchSp, benchErr = NewSpiderSystem()
		if benchErr != nil {
			return
		}
		benchAep, benchErr = NewExperiencePlatformSystem()
	})
	if benchErr != nil {
		b.Fatalf("build corpora: %v", benchErr)
	}
	return benchSp, benchAep
}

func benchErrors(b *testing.B, sys *System) []eval.GenResult {
	b.Helper()
	res, _, err := eval.RunGenerationOpts(context.Background(), sys.Client, sys.DS, sys.K, benchGenOpts())
	if err != nil {
		b.Fatal(err)
	}
	return eval.Errors(res)
}

// BenchmarkFigure2ZeroShotAccuracy regenerates Figure 2: zero-shot NL2SQL
// accuracy on SPIDER vs the Experience Platform.
func BenchmarkFigure2ZeroShotAccuracy(b *testing.B) {
	sp, ae := benchWorld(b)
	ctx := context.Background()
	var spAcc, aeAcc eval.Accuracy
	for i := 0; i < b.N; i++ {
		var err error
		_, spAcc, err = eval.RunGenerationOpts(ctx, sp.Client, sp.DS, 0, benchGenOpts())
		if err != nil {
			b.Fatal(err)
		}
		_, aeAcc, err = eval.RunGenerationOpts(ctx, ae.Client, ae.DS, 0, benchGenOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(spAcc.Pct(), "spider_acc_%")
	b.ReportMetric(aeAcc.Pct(), "aep_acc_%")
}

// BenchmarkSection41ErrorCollection regenerates the §4.1 statistics: the
// Assistant's one-shot error counts and the annotated-error counts.
func BenchmarkSection41ErrorCollection(b *testing.B) {
	sp, ae := benchWorld(b)
	ctx := context.Background()
	var spErrs, aeErrs, annotated int
	for i := 0; i < b.N; i++ {
		spRes, _, err := eval.RunGenerationOpts(ctx, sp.Client, sp.DS, sp.K, benchGenOpts())
		if err != nil {
			b.Fatal(err)
		}
		aeRes, _, err := eval.RunGenerationOpts(ctx, ae.Client, ae.DS, ae.K, benchGenOpts())
		if err != nil {
			b.Fatal(err)
		}
		spErrs, aeErrs, annotated = 0, 0, 0
		for _, r := range eval.Errors(spRes) {
			spErrs++
			if r.Example.Annotatable {
				annotated++
			}
		}
		aeErrs = len(eval.Errors(aeRes))
	}
	b.ReportMetric(float64(spErrs), "spider_errors")
	b.ReportMetric(float64(annotated), "spider_annotated")
	b.ReportMetric(float64(aeErrs), "aep_errors")
}

// BenchmarkTable2FeedbackCorrection regenerates Table 2: % instances
// corrected after one feedback round per method and corpus.
func BenchmarkTable2FeedbackCorrection(b *testing.B) {
	sp, ae := benchWorld(b)
	spErrs := benchErrors(b, sp)
	aeErrs := benchErrors(b, ae)
	ctx := context.Background()
	cells := map[string]float64{}
	run := func(name string, sys *System, method Corrector, errs []eval.GenResult) {
		res, err := eval.RunCorrection(ctx, method, sys.DS, errs, eval.CorrectionOptions{Rounds: 1, Workers: *benchWorkers})
		if err != nil {
			b.Fatal(err)
		}
		cells[name] = res.Pct(1)
	}
	for i := 0; i < b.N; i++ {
		run("qr_aep", ae, ae.QueryRewrite(), aeErrs)
		run("qr_spider", sp, sp.QueryRewrite(), spErrs)
		run("norouting_spider", sp, sp.FISQL(Options{Routing: false}), spErrs)
		run("fisql_aep", ae, ae.FISQL(Options{Routing: true}), aeErrs)
		run("fisql_spider", sp, sp.FISQL(Options{Routing: true}), spErrs)
	}
	for name, v := range cells {
		b.ReportMetric(v, name+"_%")
	}
}

// BenchmarkFigure8FeedbackRounds regenerates Figure 8: correction over two
// feedback rounds on SPIDER for FISQL and FISQL(-Routing).
func BenchmarkFigure8FeedbackRounds(b *testing.B) {
	sp, _ := benchWorld(b)
	errs := benchErrors(b, sp)
	ctx := context.Background()
	var f, n eval.CorrectionResult
	for i := 0; i < b.N; i++ {
		var err error
		f, err = eval.RunCorrection(ctx, sp.FISQL(Options{Routing: true}), sp.DS, errs, eval.CorrectionOptions{Rounds: 2, Workers: *benchWorkers})
		if err != nil {
			b.Fatal(err)
		}
		n, err = eval.RunCorrection(ctx, sp.FISQL(Options{Routing: false}), sp.DS, errs, eval.CorrectionOptions{Rounds: 2, Workers: *benchWorkers})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.Pct(1), "fisql_r1_%")
	b.ReportMetric(f.Pct(2), "fisql_r2_%")
	b.ReportMetric(n.Pct(1), "norouting_r1_%")
	b.ReportMetric(n.Pct(2), "norouting_r2_%")
}

// BenchmarkTable3Highlighting regenerates Table 3: the effect of grounding
// feedback with highlights.
func BenchmarkTable3Highlighting(b *testing.B) {
	sp, ae := benchWorld(b)
	spErrs := benchErrors(b, sp)
	aeErrs := benchErrors(b, ae)
	ctx := context.Background()
	var aeP, aeH, spP, spH float64
	for i := 0; i < b.N; i++ {
		run := func(sys *System, errs []eval.GenResult, hl bool) float64 {
			res, err := eval.RunCorrection(ctx, sys.FISQL(Options{Routing: true, Highlights: hl}),
				sys.DS, errs, eval.CorrectionOptions{Rounds: 1, Highlights: hl, Workers: *benchWorkers})
			if err != nil {
				b.Fatal(err)
			}
			return res.Pct(1)
		}
		aeP = run(ae, aeErrs, false)
		aeH = run(ae, aeErrs, true)
		spP = run(sp, spErrs, false)
		spH = run(sp, spErrs, true)
	}
	b.ReportMetric(aeP, "fisql_aep_%")
	b.ReportMetric(aeH, "highlight_aep_%")
	b.ReportMetric(spP, "fisql_spider_%")
	b.ReportMetric(spH, "highlight_spider_%")
}

// ----------------------------------------------------------------------------
// Parallel harness scaling

// workerCounts is the sweep for the scaling benchmarks: powers of two up to
// and including GOMAXPROCS.
func workerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	counts := []int{1}
	for w := 2; w < max; w *= 2 {
		counts = append(counts, w)
	}
	if max > 1 {
		counts = append(counts, max)
	}
	return counts
}

// BenchmarkGenerationWorkers measures the parallel evaluation harness: the
// same SPIDER Assistant run sharded over growing worker pools. Every row
// produces identical results (TestParallelGenerationMatchesSerial in
// internal/eval asserts it); only wall-clock changes.
func BenchmarkGenerationWorkers(b *testing.B) {
	sp, _ := benchWorld(b)
	ctx := context.Background()
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := eval.RunGenerationOpts(ctx, sp.Client, sp.DS, sp.K, eval.RunOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCorrectionWorkers measures the two-round Figure 8 correction
// protocol over growing worker pools.
func BenchmarkCorrectionWorkers(b *testing.B) {
	sp, _ := benchWorld(b)
	errs := benchErrors(b, sp)
	ctx := context.Background()
	method := sp.FISQL(Options{Routing: true})
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := eval.RunCorrection(ctx, method, sp.DS, errs,
					eval.CorrectionOptions{Rounds: 2, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ----------------------------------------------------------------------------
// Ablations

// BenchmarkAblationRAGDepth sweeps the number of retrieved demonstrations
// and reports one-shot accuracy per k — the design choice behind the
// zero-shot→RAG gap.
func BenchmarkAblationRAGDepth(b *testing.B) {
	sp, _ := benchWorld(b)
	ctx := context.Background()
	for _, k := range []int{0, 1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var acc eval.Accuracy
			for i := 0; i < b.N; i++ {
				var err error
				_, acc, err = eval.RunGenerationOpts(ctx, sp.Client, sp.DS, k, benchGenOpts())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(acc.Pct(), "acc_%")
		})
	}
}

// BenchmarkAblationRouterAccuracy compares the few-shot router against the
// naive keyword classifier on every piece of annotated feedback — the
// mechanism behind the FISQL vs FISQL(-Routing) gap.
func BenchmarkAblationRouterAccuracy(b *testing.B) {
	sp, _ := benchWorld(b)
	annot := eval.NewAnnotator(sp.DS)
	type probe struct {
		text string
		op   dataset.Op
	}
	var probes []probe
	for _, e := range sp.DS.AnnotatedErrors() {
		fb, ok := annot.Annotate(e, e.WrongSQL(), 1, false)
		if !ok {
			continue
		}
		probes = append(probes, probe{text: fb.Text, op: fb.Op})
	}
	var routedOK, naiveOK int
	for i := 0; i < b.N; i++ {
		routedOK, naiveOK = 0, 0
		for _, p := range probes {
			if feedback.ClassifyRouted(p.text) == p.op {
				routedOK++
			}
			if feedback.ClassifyNaive(p.text) == p.op {
				naiveOK++
			}
		}
	}
	n := float64(len(probes))
	b.ReportMetric(100*float64(routedOK)/n, "router_acc_%")
	b.ReportMetric(100*float64(naiveOK)/n, "naive_acc_%")
}

// BenchmarkAblationDynamicDemos compares fixed per-op repair demonstrations
// against similarity-selected ones (the paper's §5 routing extension):
// correction rate must not regress while prompt tokens shrink.
func BenchmarkAblationDynamicDemos(b *testing.B) {
	sp, _ := benchWorld(b)
	errs := benchErrors(b, sp)
	ctx := context.Background()
	run := func(dynamic int) (float64, int) {
		stats := &llm.Stats{}
		metered := &llm.Metered{Inner: sp.Client, Stats: stats}
		method := &FISQL{Client: metered, DS: sp.DS, Store: sp.Store, K: sp.K,
			Routing: true, DynamicDemos: dynamic}
		res, err := eval.RunCorrection(ctx, method, sp.DS, errs, eval.CorrectionOptions{Rounds: 1, Workers: *benchWorkers})
		if err != nil {
			b.Fatal(err)
		}
		pt, _ := stats.Tokens()
		return res.Pct(1), pt
	}
	var fixedPct, dynPct float64
	var fixedTokens, dynTokens int
	for i := 0; i < b.N; i++ {
		fixedPct, fixedTokens = run(0)
		dynPct, dynTokens = run(1)
	}
	b.ReportMetric(fixedPct, "fixed_corrected_%")
	b.ReportMetric(dynPct, "dynamic_corrected_%")
	b.ReportMetric(float64(fixedTokens), "fixed_prompt_tokens")
	b.ReportMetric(float64(dynTokens), "dynamic_prompt_tokens")
}

// BenchmarkAblationMetricStrictness contrasts execution-match accuracy with
// exact-string match over the Assistant run — motivating the execution
// metric the paper (and this harness) uses.
func BenchmarkAblationMetricStrictness(b *testing.B) {
	sp, _ := benchWorld(b)
	ctx := context.Background()
	var execAcc, strAcc float64
	for i := 0; i < b.N; i++ {
		res, acc, err := eval.RunGenerationOpts(ctx, sp.Client, sp.DS, sp.K, benchGenOpts())
		if err != nil {
			b.Fatal(err)
		}
		strOK := 0
		for _, r := range res {
			if r.SQL == r.Example.Gold {
				strOK++
			}
		}
		execAcc = acc.Pct()
		strAcc = 100 * float64(strOK) / float64(len(res))
	}
	b.ReportMetric(execAcc, "exec_match_%")
	b.ReportMetric(strAcc, "string_match_%")
}

// ----------------------------------------------------------------------------
// Substrate microbenchmarks

// BenchmarkEngineJoinQuery measures executing a three-way join with
// grouping on the concert database.
func BenchmarkEngineJoinQuery(b *testing.B) {
	sp, _ := benchWorld(b)
	db := sp.DS.DBs["concert_singer"]
	sql := "SELECT country, COUNT(*) FROM singer GROUP BY country ORDER BY COUNT(*) DESC"
	ex := engine.NewExecutor(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParser measures parsing a nested SELECT.
func BenchmarkParser(b *testing.B) {
	sql := "SELECT name, song_release_year FROM singer WHERE age = (SELECT MIN(age) FROM singer) ORDER BY name ASC LIMIT 10"
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.ParseSelect(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetrieval measures a top-8 TF-IDF search over the SPIDER pool.
func BenchmarkRetrieval(b *testing.B) {
	sp, _ := benchWorld(b)
	store := rag.NewStore(sp.DS.Demos)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Search("How many singers are there?", "concert_singer", 8)
	}
}

// ----------------------------------------------------------------------------
// Retrieval at scale

// benchRetrievalHNSW is the latency-oriented configuration the scaling
// benchmark runs: a lean graph tuned for near-flat p50 across pool sizes.
// It trades recall for latency (recall@8 vs the exact scan is reported by
// the benchmark per arm) and is deliberately lighter than the serving
// default, which favors recall and keeps benchmark-corpus pools exact; the
// benchmark's subject is the scaling shape, and the exact rerank on top of
// the candidate set is identical in both setups.
var benchRetrievalHNSW = rag.HNSWConfig{M: 8, EfConstruction: 80, EfSearch: 10, EfDescent: 1}

// benchRetrievalDB is the largest aep partition; every query probes it.
const benchRetrievalDB = "experience_platform"

type retrievalArm struct {
	exact, hnsw *rag.Store
	buildNs     float64 // hnsw index build
	recallAt8   float64 // hnsw vs exact top-8 overlap
	exactP50Ns  float64 // min-of-rounds p50 of the linear scan
}

var (
	benchRetrievalMu   sync.Mutex
	benchRetrievalArms = map[int]*retrievalArm{}
)

// benchRetrievalArm builds (once per pool multiplier — the 1000x build costs
// ~20s) the paired exact and HNSW stores plus the baseline measurements the
// timed loop reports alongside its own numbers.
func benchRetrievalArm(b *testing.B, ae *System, qs []string, mult int) *retrievalArm {
	b.Helper()
	benchRetrievalMu.Lock()
	defer benchRetrievalMu.Unlock()
	if arm := benchRetrievalArms[mult]; arm != nil {
		return arm
	}
	demos := dataset.ScaleDemos(ae.DS.Demos, mult)
	arm := &retrievalArm{}
	arm.exact = rag.NewStoreOptions(demos, rag.Options{Index: rag.IndexExact})
	t0 := time.Now()
	arm.hnsw = rag.NewStoreOptions(demos, rag.Options{Index: rag.IndexHNSW, HNSW: benchRetrievalHNSW})
	arm.buildNs = float64(time.Since(t0).Nanoseconds())
	match, total := 0, 0
	for _, q := range qs { // doubles as the warm-up pass for both stores
		want := arm.exact.Search(q, benchRetrievalDB, 8)
		got := map[string]bool{}
		for _, r := range arm.hnsw.Search(q, benchRetrievalDB, 8) {
			got[r.Demo.Question] = true
		}
		for _, r := range want {
			total++
			if got[r.Demo.Question] {
				match++
			}
		}
	}
	arm.recallAt8 = float64(match) / float64(total)
	rounds := 5
	if mult >= 1000 {
		rounds = 2 // one linear-scan round is ~4s at 1000x; p50 is stable
	}
	arm.exactP50Ns = math.Inf(1)
	for r := 0; r < rounds; r++ {
		var samples []float64
		for _, q := range qs {
			t := time.Now()
			arm.exact.Search(q, benchRetrievalDB, 8)
			samples = append(samples, float64(time.Since(t).Nanoseconds()))
		}
		sort.Float64s(samples)
		arm.exactP50Ns = math.Min(arm.exactP50Ns, samples[len(samples)/2])
	}
	benchRetrievalArms[mult] = arm
	return arm
}

// BenchmarkRetrievalScale is the paired scaling benchmark behind
// BENCH_retrieval.json: top-8 retrieval from the aep demonstration pool at
// 1x/32x/1000x its native size, linear scan vs HNSW. Reported per arm:
// hnsw p50/p99 over every timed search, the exact-scan p50 (min of
// per-round percentiles — the scan is too slow at 1000x for a long run, so
// the estimator rejects background-load spikes instead), the hnsw index
// build time and recall@8 against the exact scan. The 1000x arm (a ~20s
// index build and a multi-second linear-scan baseline) is skipped under
// -short; CI smoke runs the small arms only.
func BenchmarkRetrievalScale(b *testing.B) {
	_, ae := benchWorld(b)
	var qs []string
	for _, e := range ae.DS.Examples {
		qs = append(qs, e.Question)
	}
	mults := []int{1, 32}
	if !testing.Short() {
		mults = append(mults, 1000)
	}
	for _, mult := range mults {
		b.Run(fmt.Sprintf("pool=%dx", mult), func(b *testing.B) {
			arm := benchRetrievalArm(b, ae, qs, mult)
			samples := make([]float64, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				t := time.Now()
				arm.hnsw.Search(q, benchRetrievalDB, 8)
				samples = append(samples, float64(time.Since(t).Nanoseconds()))
			}
			b.StopTimer()
			sort.Float64s(samples)
			p50 := samples[len(samples)/2]
			p99 := samples[len(samples)*99/100]
			b.ReportMetric(p50, "hnsw_p50_ns")
			b.ReportMetric(p99, "hnsw_p99_ns")
			b.ReportMetric(arm.exactP50Ns, "exact_p50_ns")
			b.ReportMetric(arm.exactP50Ns/p50, "speedup_p50")
			b.ReportMetric(arm.recallAt8, "recall_at_8")
			b.ReportMetric(arm.buildNs/1e6, "build_ms")
		})
	}
}

// BenchmarkRepair measures one feedback-repair LLM round trip.
func BenchmarkRepair(b *testing.B) {
	_, ae := benchWorld(b)
	ctx := context.Background()
	method := ae.FISQL(Options{Routing: true})
	var e *Example
	for _, cand := range ae.DS.AnnotatedErrors() {
		if len(cand.Traps) == 1 && !cand.Traps[0].Misaligned && !cand.Traps[0].Vague {
			e = cand
			break
		}
	}
	if e == nil {
		b.Fatal("no suitable example")
	}
	annot := eval.NewAnnotator(ae.DS)
	fb, ok := annot.Annotate(e, e.WrongSQL(), 1, false)
	if !ok {
		b.Fatal("no feedback")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := method.Correct(ctx, e.DB, e.Question, e.WrongSQL(), fb); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------------------------------
// Compile-once engine micro-benchmarks

// benchJoinDB builds an orders/customers pair sized so the nested-loop join
// does rows*customers ON evaluations while the hash join does one build +
// one probe per row.
func benchJoinDB(b *testing.B, orders, customers int) *engine.Database {
	b.Helper()
	db := engine.NewDatabase("bench_join")
	if err := db.LoadScript("CREATE TABLE customers (id INT, name TEXT);\nCREATE TABLE orders (id INT, cust_id INT, total INT);"); err != nil {
		b.Fatal(err)
	}
	ct, _ := db.Table("customers")
	for i := 0; i < customers; i++ {
		ct.Rows = append(ct.Rows, []engine.Value{engine.Int(int64(i)), engine.Text(fmt.Sprintf("c%d", i))})
	}
	ot, _ := db.Table("orders")
	for i := 0; i < orders; i++ {
		ot.Rows = append(ot.Rows, []engine.Value{engine.Int(int64(i)), engine.Int(int64(i % customers)), engine.Int(int64(i * 7 % 100))})
	}
	return db
}

// BenchmarkJoinNestedVsHash compares the O(n·m) nested loop with the hash
// equi-join on the same 2000x500 equality join.
func BenchmarkJoinNestedVsHash(b *testing.B) {
	db := benchJoinDB(b, 2000, 500)
	sql := "SELECT COUNT(*) FROM orders JOIN customers ON orders.cust_id = customers.id"
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("nested", func(b *testing.B) {
		ex := engine.NewExecutor(db)
		ex.SetHashJoin(false)
		for i := 0; i < b.N; i++ {
			if _, err := ex.Select(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hash", func(b *testing.B) {
		ex := engine.NewExecutor(db)
		for i := 0; i < b.N; i++ {
			if _, err := ex.Select(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanCacheHit compares re-parsing+planning a query per execution
// against serving the plan from a shared engine.Cache.
func BenchmarkPlanCacheHit(b *testing.B) {
	sp, _ := benchWorld(b)
	db := sp.DS.DBs["concert_singer"]
	sql := "SELECT st.name, c.concert_name FROM concert AS c JOIN stadium AS st ON c.stadium_id = st.stadium_id WHERE c.year = 2014"
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.NewExecutor(db).Query(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := engine.NewCache(0)
		for i := 0; i < b.N; i++ {
			if _, err := cache.Query(db, sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ----------------------------------------------------------------------------
// Columnar execution benchmarks
//
// Each benchmark runs the same prepared plan on two executors — columnar
// path enabled (the default) and disabled — so the timing difference is the
// vectorized executor alone. Sizes sweep 1x (the corpus's native scale,
// where results must at least not regress) to 100x (the "-rows 100" scale
// the columnar layout exists for).

// benchColumnarDB builds one wide table with deterministic synthetic data:
// an INT key, a low-cardinality TEXT group, a spread INT measure and a REAL
// measure with NULLs every 17th row.
func benchColumnarDB(b *testing.B, rows int) *engine.Database {
	b.Helper()
	db := engine.NewDatabase("bench_columnar")
	if err := db.LoadScript("CREATE TABLE t (id INT, grp TEXT, val INT, score REAL);"); err != nil {
		b.Fatal(err)
	}
	tt, _ := db.Table("t")
	for i := 0; i < rows; i++ {
		score := engine.Float(float64(i%1000) / 3.0)
		if i%17 == 0 {
			score = engine.Null()
		}
		tt.Rows = append(tt.Rows, []engine.Value{
			engine.Int(int64(i)),
			engine.Text(fmt.Sprintf("g%02d", i%13)),
			engine.Int(int64(i * 7919 % 10007)),
			score,
		})
	}
	return db
}

// benchColumnarArms times one query on the row and columnar executors and
// asserts they produce identical results before measuring.
func benchColumnarArms(b *testing.B, db *engine.Database, sql string) {
	b.Helper()
	p, err := engine.Prepare(db, sql)
	if err != nil {
		b.Fatal(err)
	}
	exRow := engine.NewExecutor(db)
	exRow.SetColumnar(false)
	exCol := engine.NewExecutor(db)
	want, err := exRow.Run(p)
	if err != nil {
		b.Fatal(err)
	}
	got, err := exCol.Run(p)
	if err != nil {
		b.Fatal(err)
	}
	if !engine.EqualResults(want, got) {
		b.Fatalf("row/columnar divergence for %q", sql)
	}
	b.Run("row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exRow.Run(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exCol.Run(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColumnarScanFilter measures a selective predicate scan: WHERE
// masks over typed arrays versus per-row tree evaluation.
func BenchmarkColumnarScanFilter(b *testing.B) {
	for _, rows := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			db := benchColumnarDB(b, rows)
			benchColumnarArms(b, db,
				"SELECT id FROM t WHERE val > 9700 AND grp <> 'g03'")
		})
	}
}

// BenchmarkColumnarAggregate measures grouped aggregation: single-column
// hash grouping plus typed folds versus per-row env grouping and per-group
// argument re-evaluation.
func BenchmarkColumnarAggregate(b *testing.B) {
	for _, rows := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			db := benchColumnarDB(b, rows)
			benchColumnarArms(b, db,
				"SELECT grp, COUNT(*), SUM(val), AVG(val), MIN(score), MAX(score) FROM t GROUP BY grp ORDER BY grp")
		})
	}
}

// BenchmarkColumnarGlobalAgg measures the whole-table aggregate shape that
// dominates the corpus's COUNT questions.
func BenchmarkColumnarGlobalAgg(b *testing.B) {
	db := benchColumnarDB(b, 100000)
	benchColumnarArms(b, db, "SELECT COUNT(*), AVG(val) FROM t WHERE score IS NOT NULL")
}

// BenchmarkColumnarCorpus100x replays the Experience-Platform scan, filter,
// aggregate and join gold queries against the corpus scaled to 100x its base
// rows — the end-to-end view of the same comparison. Golds with subqueries
// are excluded: a correlated subquery re-scans its table per outer row on
// both executors (the vectorized path evaluates it through the identical
// generic code), so they only add minutes of identical work to both arms.
func BenchmarkColumnarCorpus100x(b *testing.B) {
	ds, err := aep.BuildRows(100)
	if err != nil {
		b.Fatal(err)
	}
	type pq struct {
		db   *engine.Database
		plan *engine.Plan
	}
	var plans []pq
	for _, e := range ds.Examples {
		if strings.Contains(e.Gold, "(SELECT") {
			continue
		}
		db := ds.DBs[e.DB]
		p, err := engine.Prepare(db, e.Gold)
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, pq{db: db, plan: p})
	}
	if len(plans) == 0 {
		b.Fatal("no subquery-free gold queries")
	}
	run := func(b *testing.B, columnar bool) {
		exs := map[*engine.Database]*engine.Executor{}
		for _, q := range plans {
			if _, ok := exs[q.db]; !ok {
				ex := engine.NewExecutor(q.db)
				ex.SetColumnar(columnar)
				exs[q.db] = ex
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range plans {
				if _, err := exs[q.db].Run(q.plan); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("row", func(b *testing.B) { run(b, false) })
	b.Run("columnar", func(b *testing.B) { run(b, true) })
}

// BenchmarkLikeMatch measures a LIKE scan with a backtracking-heavy pattern;
// the iterative matcher keeps this linear where the old recursive one was
// exponential in the number of %-groups.
func BenchmarkLikeMatch(b *testing.B) {
	db := engine.NewDatabase("bench_like")
	if err := db.LoadScript("CREATE TABLE t (s TEXT);"); err != nil {
		b.Fatal(err)
	}
	tt, _ := db.Table("t")
	for i := 0; i < 500; i++ {
		tt.Rows = append(tt.Rows, []engine.Value{engine.Text(fmt.Sprintf("alpha%dbetaaaaaaaaaaaagamma%d", i, i*3))})
	}
	sql := "SELECT COUNT(*) FROM t WHERE s LIKE '%a%a%a%a%a%a%a%a%gamma%'"
	ex := engine.NewExecutor(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}
