package fisql

import (
	"reflect"
	"testing"

	"fisql/internal/engine"
	"fisql/internal/sqlparse"
)

// TestDifferentialPlannedVsInterpreter is the semantic gate on the
// compile-once engine: every query of both corpora (gold SQL, the naive
// wrong generation, every trap-state variant, and the demonstration pool)
// runs through the cached/planned/hash-join path twice (cache miss, then
// hit) and through the seed interpreter (uncached parse, dynamic lookups,
// nested-loop joins). Results — including row order and error text — must be
// identical.
func TestDifferentialPlannedVsInterpreter(t *testing.T) {
	builders := []struct {
		name  string
		build func() (*System, error)
	}{
		{"spider", NewSpiderSystem},
		{"aep", NewExperiencePlatformSystem},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			sys, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			type q struct{ db, sql string }
			seen := map[q]bool{}
			var queries []q
			add := func(db, sql string) {
				if sql == "" {
					return
				}
				k := q{db, sql}
				if !seen[k] {
					seen[k] = true
					queries = append(queries, k)
				}
			}
			for _, e := range sys.DS.Examples {
				add(e.DB, e.Gold)
				add(e.DB, e.WrongSQL())
				for _, v := range e.Variants {
					add(e.DB, v)
				}
			}
			for _, d := range sys.DS.Demos {
				add(d.DB, d.SQL)
			}
			if len(queries) < len(sys.DS.Examples) {
				t.Fatalf("corpus produced only %d queries", len(queries))
			}

			cache := engine.NewCache(0)
			for _, qq := range queries {
				db := sys.DS.DBs[qq.db]
				if db == nil {
					continue
				}
				// Reference: the seed interpreter — no plan, no hash joins.
				var refRes *engine.Result
				var refErr error
				if sel, perr := sqlparse.ParseSelect(qq.sql); perr != nil {
					refErr = perr
				} else {
					ref := engine.NewExecutor(db)
					ref.SetHashJoin(false)
					refRes, refErr = ref.Select(sel)
				}
				// Planned path, twice: first populates the cache, second hits it.
				for pass := 0; pass < 2; pass++ {
					gotRes, gotErr := cache.Query(db, qq.sql)
					if (refErr == nil) != (gotErr == nil) ||
						(refErr != nil && refErr.Error() != gotErr.Error()) {
						t.Fatalf("db %s query %q (pass %d): interpreter err %v, planned err %v",
							qq.db, qq.sql, pass, refErr, gotErr)
					}
					if !reflect.DeepEqual(refRes, gotRes) {
						t.Fatalf("db %s query %q (pass %d):\ninterpreter:\n%s\nplanned:\n%s",
							qq.db, qq.sql, pass, refRes.Format(), gotRes.Format())
					}
				}
			}
			// The planned passes above ran with the columnar path enabled
			// (the default); the corpus must actually exercise it, or the
			// differential is vacuously comparing row path to row path.
			var hits, falls int64
			for _, db := range sys.DS.DBs {
				h, f := db.ColumnarStats()
				hits += h
				falls += f
			}
			if hits == 0 {
				t.Fatalf("columnar path never hit across the corpus (fallbacks=%d)", falls)
			}
			t.Logf("%s: %d distinct queries result-identical (planned+cached vs interpreter); columnar hits=%d fallbacks=%d",
				b.name, len(queries), hits, falls)
		})
	}
}
