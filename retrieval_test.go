package fisql

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"fisql/internal/dataset"
	"fisql/internal/eval"
	"fisql/internal/rag"
)

// TestRetrievalDifferential is the full-corpus byte-identity gate for the
// HNSW index: over both benchmark corpora, at the base pool and at a 32x
// demo-scaled pool (large enough that every partition is above the default
// ef, so the graph is genuinely traversed rather than served by the
// whole-partition fallback), HNSW + exact rerank must return exactly what
// the linear scan returns — same demos, same order, bit-equal scores — for
// every example and demonstration question. It also fails if the HNSW store
// did not actually serve the probes (the exact path silently substituting
// would otherwise pass trivially).
func TestRetrievalDifferential(t *testing.T) {
	sp, err := NewSpiderSystem()
	if err != nil {
		t.Fatal(err)
	}
	ae, err := NewExperiencePlatformSystem()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		corpus string
		sys    *System
		mult   int
	}{
		{"spider", sp, 1},
		{"aep", ae, 1},
		{"spider-32x", sp, 32},
		{"aep-32x", ae, 32},
	} {
		t.Run(tc.corpus, func(t *testing.T) {
			demos := dataset.ScaleDemos(tc.sys.DS.Demos, tc.mult)
			exact := rag.NewStoreOptions(demos, rag.Options{Index: rag.IndexExact})
			hnsw := rag.NewStoreOptions(demos, rag.Options{Index: rag.IndexHNSW})

			compare := func(q, db string, k int) {
				t.Helper()
				want := exact.Search(q, db, k)
				got := hnsw.Search(q, db, k)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("retrieval diverged: q=%q db=%q k=%d\nexact: %+v\nhnsw:  %+v",
						q, db, k, summarize(want), summarize(got))
				}
			}
			for _, e := range tc.sys.DS.Examples {
				compare(e.Question, e.DB, tc.sys.K)
				compare(e.Question, e.DB, 1)
			}
			for i, d := range tc.sys.DS.Demos {
				compare(d.Question, d.DB, tc.sys.K)
				if i%7 == 0 { // cross-db searches, sampled for time
					compare(d.Question, "", tc.sys.K)
				}
			}
			st := hnsw.Stats()
			if st.Index != string(rag.IndexHNSW) {
				t.Fatalf("store served by %q, want hnsw", st.Index)
			}
			if st.IndexProbes == 0 {
				t.Fatal("hnsw index served no probes — exact path silently used")
			}
		})
	}
}

func summarize(rs []rag.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = fmt.Sprintf("%q@%.6f", r.Demo.Question, r.Score)
	}
	return out
}

// TestEvalAccuracyUnchangedWithHNSW re-runs full-corpus generation with the
// HNSW store and requires accuracy AND every generated SQL to match the
// exact store's run: byte-identical retrieval must mean byte-identical
// prompts, generations and metrics.
func TestEvalAccuracyUnchangedWithHNSW(t *testing.T) {
	ctx := context.Background()
	for _, build := range []func() (*System, error){NewSpiderSystem, NewExperiencePlatformSystem} {
		sys, err := build()
		if err != nil {
			t.Fatal(err)
		}
		base, baseAcc, err := eval.RunGenerationOpts(ctx, sys.Client, sys.DS, sys.K, eval.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.SetDemoIndex("hnsw"); err != nil {
			t.Fatal(err)
		}
		got, gotAcc, err := eval.RunGenerationOpts(ctx, sys.Client, sys.DS, sys.K,
			eval.RunOptions{Store: sys.Store})
		if err != nil {
			t.Fatal(err)
		}
		if baseAcc != gotAcc {
			t.Fatalf("%s: accuracy shifted under hnsw: %+v -> %+v", sys.DS.Name, baseAcc, gotAcc)
		}
		for i := range base {
			if base[i].SQL != got[i].SQL {
				t.Fatalf("%s: generation diverged on %s:\nexact: %s\nhnsw:  %s",
					sys.DS.Name, base[i].Example.ID, base[i].SQL, got[i].SQL)
			}
		}
		if sys.Store.Stats().IndexProbes == 0 {
			t.Fatal("hnsw index not exercised by generation run")
		}
	}
}

// TestSessionFoldsFeedback drives the quickstart correction flow on a
// FoldFeedback system and checks the successful correction lands in the
// retrieval store as a new, retrievable demonstration — and that a second
// session converging on the same fix is deduplicated.
func TestSessionFoldsFeedback(t *testing.T) {
	sys, err := NewExperiencePlatformSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetDemoIndex("hnsw"); err != nil {
		t.Fatal(err)
	}
	sys.FoldFeedback = true
	ctx := context.Background()
	const question = "How many audiences were created in January?"

	before := sys.Store.Len()
	run := func() {
		sess := sys.Session("experience_platform", Options{Routing: true})
		if _, err := sess.Ask(ctx, question); err != nil {
			t.Fatal(err)
		}
		ans, err := sess.Feedback(ctx, "we are in 2024", nil)
		if err != nil {
			t.Fatal(err)
		}
		if ans.ExecErr != nil {
			t.Fatalf("correction did not execute: %v", ans.ExecErr)
		}
	}
	run()
	st := sys.Store.Stats()
	if st.Inserts != 1 || sys.Store.Len() != before+1 {
		t.Fatalf("correction not folded: inserts=%d len %d->%d", st.Inserts, before, sys.Store.Len())
	}
	run() // same correction again: dedup, not growth
	st = sys.Store.Stats()
	if st.Inserts != 1 || st.DupSkips != 1 || sys.Store.Len() != before+1 {
		t.Fatalf("duplicate fold not skipped: %+v", st)
	}
	hits := sys.Store.Search(question, "experience_platform", 1)
	if len(hits) == 0 || hits[0].Demo.Question != question {
		t.Fatalf("folded demonstration not retrievable: %+v", hits)
	}
}
