package fisql

import (
	"context"
	"strings"
	"sync"
	"testing"
)

var (
	apiOnce sync.Once
	apiSys  *System
	apiErr  error
)

func aepSystem(t *testing.T) *System {
	t.Helper()
	apiOnce.Do(func() { apiSys, apiErr = NewExperiencePlatformSystem() })
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiSys
}

func TestPublicQuickstartFlow(t *testing.T) {
	sys := aepSystem(t)
	ctx := context.Background()
	sess := sys.Session("experience_platform", Options{Routing: true})

	ans, err := sess.Ask(ctx, "How many audiences were created in January?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.SQL, "2023") {
		t.Fatalf("year trap should fire: %q", ans.SQL)
	}
	ans, err = sess.Feedback(ctx, "we are in 2024", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.SQL, "2024-01-01") {
		t.Errorf("feedback not applied: %q", ans.SQL)
	}
	if ans.Result == nil || ans.ExecErr != nil {
		t.Errorf("result missing: %+v", ans)
	}
}

func TestDatabasesSorted(t *testing.T) {
	sys := aepSystem(t)
	dbs := sys.Databases()
	if len(dbs) != 1 || dbs[0] != "experience_platform" {
		t.Errorf("databases: %v", dbs)
	}
	sp, err := NewSpiderSystem()
	if err != nil {
		t.Fatal(err)
	}
	spDBs := sp.Databases()
	if len(spDBs) != 20 {
		t.Fatalf("spider databases: %d", len(spDBs))
	}
	for i := 1; i < len(spDBs); i++ {
		if spDBs[i] < spDBs[i-1] {
			t.Fatal("databases not sorted")
		}
	}
}

func TestMethodConstructors(t *testing.T) {
	sys := aepSystem(t)
	if sys.FISQL(Options{Routing: true}).Name() != "FISQL" {
		t.Error("FISQL constructor")
	}
	if sys.FISQL(Options{}).Name() != "FISQL (- Routing)" {
		t.Error("no-routing constructor")
	}
	if sys.QueryRewrite().Name() != "Query Rewrite" {
		t.Error("query-rewrite constructor")
	}
	if sys.Assistant() == nil {
		t.Error("assistant constructor")
	}
}

func TestCorpusShapes(t *testing.T) {
	sys := aepSystem(t)
	if len(sys.DS.Examples) != 200 {
		t.Errorf("AEP examples: %d", len(sys.DS.Examples))
	}
	if sys.Store.Len() == 0 {
		t.Error("empty demonstration store")
	}
}
