module fisql

go 1.22
