// Command fisql-datagen materializes the synthetic benchmarks to disk: the
// schema DDL, the table data as INSERT scripts, and the examples (with
// their trap annotations) as JSON lines — useful for inspecting the corpora
// or loading them into another engine.
//
// Usage:
//
//	fisql-datagen -corpus spider -out ./data/spider
//	fisql-datagen -corpus aep -out ./data/aep -examples-only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"fisql/internal/dataset"
	"fisql/internal/dataset/aep"
	"fisql/internal/dataset/spider"
	"fisql/internal/engine"
)

func main() {
	log.SetFlags(0)
	corpus := flag.String("corpus", "spider", "corpus: spider or aep")
	out := flag.String("out", "", "output directory (required)")
	examplesOnly := flag.Bool("examples-only", false, "write only examples.jsonl")
	rows := flag.Int("rows", 1, "row-count multiplier: scale every table to N times its base rows (examples are unchanged)")
	demoMult := flag.Int("demos", 1, "demonstration-pool multiplier: scale the demo pool to N times its base size with deterministic phrasing variants (examples and tables are unchanged)")
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}
	if *rows < 1 {
		log.Fatal("-rows must be >= 1")
	}
	if *demoMult < 1 {
		log.Fatal("-demos must be >= 1")
	}

	var ds *dataset.Dataset
	var err error
	switch *corpus {
	case "spider":
		ds, err = spider.BuildRows(*rows)
	case "aep":
		ds, err = aep.BuildRows(*rows)
	default:
		log.Fatalf("unknown corpus %q", *corpus)
	}
	if err != nil {
		log.Fatalf("build corpus: %v", err)
	}
	ds.Demos = dataset.ScaleDemos(ds.Demos, *demoMult)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := writeExamples(ds, filepath.Join(*out, "examples.jsonl")); err != nil {
		log.Fatal(err)
	}
	if err := writeDemos(ds, filepath.Join(*out, "demonstrations.jsonl")); err != nil {
		log.Fatal(err)
	}
	if !*examplesOnly {
		for name, db := range ds.DBs {
			if err := writeDB(ds, name, db, *out); err != nil {
				log.Fatal(err)
			}
		}
	}
	log.Printf("wrote %d examples across %d databases to %s", len(ds.Examples), len(ds.DBs), *out)
}

// exampleJSON is the serialized example record.
type exampleJSON struct {
	ID          string   `json:"id"`
	DB          string   `json:"db"`
	Question    string   `json:"question"`
	Gold        string   `json:"gold_sql"`
	WrongSQL    string   `json:"wrong_sql,omitempty"`
	TrapKinds   []string `json:"trap_kinds,omitempty"`
	Annotatable bool     `json:"annotatable,omitempty"`
}

func writeExamples(ds *dataset.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, e := range ds.Examples {
		rec := exampleJSON{
			ID: e.ID, DB: e.DB, Question: e.Question, Gold: e.Gold,
			Annotatable: e.Annotatable,
		}
		if len(e.Traps) > 0 {
			rec.WrongSQL = e.WrongSQL()
			for _, t := range e.Traps {
				rec.TrapKinds = append(rec.TrapKinds, t.Kind.String())
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

func writeDemos(ds *dataset.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, d := range ds.Demos {
		if err := enc.Encode(map[string]string{"db": d.DB, "question": d.Question, "sql": d.SQL}); err != nil {
			return err
		}
	}
	return nil
}

func writeDB(ds *dataset.Dataset, name string, db *engine.Database, dir string) error {
	var sb strings.Builder
	sb.WriteString(ds.Schemas[name].DDL())
	for _, t := range db.Tables() {
		for _, row := range t.Rows {
			sb.WriteString("INSERT INTO ")
			sb.WriteString(t.Name)
			sb.WriteString(" VALUES (")
			for i, v := range row {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(sqlLiteral(v))
			}
			sb.WriteString(");\n")
		}
	}
	return os.WriteFile(filepath.Join(dir, fmt.Sprintf("%s.sql", name)), []byte(sb.String()), 0o644)
}

func sqlLiteral(v engine.Value) string {
	switch v.T {
	case engine.TypeNull:
		return "NULL"
	case engine.TypeText:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case engine.TypeBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.String()
	}
}
