// Command fisql-eval regenerates the paper's experiments: Figure 2
// (zero-shot accuracy), the §4.1 error-collection statistics, Table 2
// (feedback correction), Figure 8 (multi-round correction), and Table 3
// (highlight grounding).
//
// Usage:
//
//	fisql-eval -exp all
//	fisql-eval -exp table2
//	fisql-eval -exp figure8 -rounds 3
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"fisql"
	"fisql/internal/eval"
	"fisql/internal/obs"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "experiment: figure2, errors, table2, figure8, table3, analysis, router, breakdown, cost, all")
	rounds := flag.Int("rounds", 2, "feedback rounds for figure8")
	workers := flag.Int("workers", 0, "evaluation worker goroutines (0 = GOMAXPROCS, 1 = serial); results are identical for every value")
	jsonOut := flag.String("json", "", "also write machine-readable results to this file ('-' for stdout)")
	metrics := flag.Bool("metrics", false,
		"collect per-stage latency histograms across all experiments and print the summary")
	rows := flag.Int("rows", 1,
		"row-count multiplier: scale every database to N times its base rows (questions and gold SQL are unchanged and runs stay deterministic; execution-match accuracy can shift slightly because results are computed over the scaled data)")
	requireColumnar := flag.Bool("require-columnar", false,
		"fail unless the engine's vectorized columnar path served at least one query (CI guard)")
	ragIndex := flag.String("rag-index", "exact",
		"demonstration retrieval index: exact (linear scan) or hnsw (sublinear graph + exact rerank; results are byte-identical)")
	flag.Parse()

	if *rows < 1 {
		log.Fatal("-rows must be >= 1")
	}
	sp, err := fisql.NewSpiderSystemRows(*rows)
	if err != nil {
		log.Fatalf("build spider corpus: %v", err)
	}
	ae, err := fisql.NewExperiencePlatformSystemRows(*rows)
	if err != nil {
		log.Fatalf("build experience-platform corpus: %v", err)
	}
	for _, sys := range []*fisql.System{sp, ae} {
		if err := sys.SetDemoIndex(*ragIndex); err != nil {
			log.Fatalf("-rag-index: %v", err)
		}
	}
	r := runner{sp: sp, ae: ae, ctx: context.Background(), export: eval.NewExport(), workers: *workers}
	if *metrics {
		r.obs = obs.NewMetrics()
	}

	switch *exp {
	case "figure2":
		r.figure2()
	case "errors":
		r.errors()
	case "table2":
		r.table2()
	case "figure8":
		r.figure8(*rounds)
	case "table3":
		r.table3()
	case "analysis":
		r.analysis()
	case "router":
		r.router()
	case "breakdown":
		r.breakdown()
	case "cost":
		r.cost()
	case "all":
		r.figure2()
		fmt.Println()
		r.errors()
		fmt.Println()
		r.table2()
		fmt.Println()
		r.figure8(*rounds)
		fmt.Println()
		r.table3()
		fmt.Println()
		r.analysis()
		fmt.Println()
		r.router()
		fmt.Println()
		r.breakdown()
		fmt.Println()
		r.cost()
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}

	if r.obs != nil {
		fmt.Println()
		fmt.Println("Pipeline stage timings (aggregate across experiments)")
		r.obs.WriteStageSummary(os.Stdout)
	}

	if *requireColumnar {
		var hits, falls int64
		for _, sys := range []*fisql.System{sp, ae} {
			for _, db := range sys.DS.DBs {
				h, f := db.ColumnarStats()
				hits += h
				falls += f
			}
		}
		fmt.Printf("\ncolumnar execution: %d hits, %d fallbacks\n", hits, falls)
		if hits == 0 {
			log.Fatal("-require-columnar: the vectorized columnar path served no queries")
		}
	}

	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := r.export.Write(out); err != nil {
			log.Fatal(err)
		}
	}
}

type runner struct {
	sp, ae  *fisql.System
	ctx     context.Context
	export  *eval.Export
	workers int
	// obs aggregates per-stage latency histograms across every experiment
	// the run executes; nil (the default) disables tracing entirely.
	obs *obs.Metrics

	spErrs, aeErrs []eval.GenResult
}

func (r *runner) mustGenerate(sys *fisql.System, k int) ([]eval.GenResult, eval.Accuracy) {
	res, acc, err := eval.RunGenerationOpts(r.ctx, sys.Client, sys.DS, k,
		eval.RunOptions{Workers: r.workers, Obs: r.obs, Store: sys.Store})
	if err != nil {
		log.Fatalf("generation: %v", err)
	}
	return res, acc
}

func (r *runner) ensureErrors() {
	if r.spErrs == nil {
		res, _ := r.mustGenerate(r.sp, r.sp.K)
		r.spErrs = eval.Errors(res)
	}
	if r.aeErrs == nil {
		res, _ := r.mustGenerate(r.ae, r.ae.K)
		r.aeErrs = eval.Errors(res)
	}
}

func (r *runner) correct(sys *fisql.System, method fisql.Corrector, errs []eval.GenResult, rounds int, hl bool) eval.CorrectionResult {
	out, err := eval.RunCorrection(r.ctx, method, sys.DS, errs,
		eval.CorrectionOptions{Rounds: rounds, Highlights: hl, Workers: r.workers, Obs: r.obs})
	if err != nil {
		log.Fatalf("correction: %v", err)
	}
	r.export.AddCorrection(sys.DS.Name, out)
	return out
}

func (r *runner) figure2() {
	_, spAcc := r.mustGenerate(r.sp, 0)
	_, aeAcc := r.mustGenerate(r.ae, 0)
	r.export.Figure2["spider"] = eval.AccJSON(spAcc)
	r.export.Figure2["experience_platform"] = eval.AccJSON(aeAcc)
	eval.PrintFigure2(os.Stdout, spAcc, aeAcc)
}

func (r *runner) errors() {
	spRes, spAcc := r.mustGenerate(r.sp, r.sp.K)
	r.spErrs = eval.Errors(spRes)
	annotated := 0
	for _, e := range r.spErrs {
		if e.Example.Annotatable {
			annotated++
		}
	}
	r.export.Errors["spider"] = eval.ErrorStatsJSON{
		OneShotAccuracy: eval.AccJSON(spAcc), Errors: len(r.spErrs), Annotated: annotated,
	}
	eval.PrintSection41(os.Stdout, "SPIDER", spAcc, len(r.spErrs), annotated)
	fmt.Println()
	aeRes, aeAcc := r.mustGenerate(r.ae, r.ae.K)
	r.aeErrs = eval.Errors(aeRes)
	annotated = 0
	for _, e := range r.aeErrs {
		if e.Example.Annotatable {
			annotated++
		}
	}
	r.export.Errors["experience_platform"] = eval.ErrorStatsJSON{
		OneShotAccuracy: eval.AccJSON(aeAcc), Errors: len(r.aeErrs), Annotated: annotated,
	}
	eval.PrintSection41(os.Stdout, "Experience Platform", aeAcc, len(r.aeErrs), annotated)
}

func (r *runner) table2() {
	r.ensureErrors()
	qrAEP := r.correct(r.ae, r.ae.QueryRewrite(), r.aeErrs, 1, false)
	qrSP := r.correct(r.sp, r.sp.QueryRewrite(), r.spErrs, 1, false)
	nrSP := r.correct(r.sp, r.sp.FISQL(fisql.Options{Routing: false}), r.spErrs, 1, false)
	fAEP := r.correct(r.ae, r.ae.FISQL(fisql.Options{Routing: true}), r.aeErrs, 1, false)
	fSP := r.correct(r.sp, r.sp.FISQL(fisql.Options{Routing: true}), r.spErrs, 1, false)
	eval.PrintTable2(os.Stdout, "Table 2 — % instances corrected with natural-language feedback", []eval.Table2Row{
		{Method: "Query Rewrite", AEP: qrAEP.Pct(1), Spider: qrSP.Pct(1)},
		{Method: "FISQL (- Routing)", AEP: -1, Spider: nrSP.Pct(1)},
		{Method: "FISQL", AEP: fAEP.Pct(1), Spider: fSP.Pct(1)},
	})
}

func (r *runner) figure8(rounds int) {
	r.ensureErrors()
	f := r.correct(r.sp, r.sp.FISQL(fisql.Options{Routing: true}), r.spErrs, rounds, false)
	n := r.correct(r.sp, r.sp.FISQL(fisql.Options{Routing: false}), r.spErrs, rounds, false)
	eval.PrintFigure8(os.Stdout, []eval.CorrectionResult{f, n})
}

func (r *runner) analysis() {
	r.ensureErrors()
	a, err := eval.AnalyzeCorrection(r.ctx, r.sp.FISQL(fisql.Options{Routing: true}), r.sp.DS, r.spErrs)
	if err != nil {
		log.Fatalf("analysis: %v", err)
	}
	eval.PrintAnalysis(os.Stdout, a)
	fmt.Println()
	a, err = eval.AnalyzeCorrection(r.ctx, r.ae.FISQL(fisql.Options{Routing: true}), r.ae.DS, r.aeErrs)
	if err != nil {
		log.Fatalf("analysis: %v", err)
	}
	eval.PrintAnalysis(os.Stdout, a)
}

func (r *runner) router() {
	eval.PrintRouterReport(os.Stdout, "few-shot router", eval.RunRouterReport(r.sp.DS, eval.ClassifierRouted))
	fmt.Println()
	eval.PrintRouterReport(os.Stdout, "naive keyword heuristic", eval.RunRouterReport(r.sp.DS, eval.ClassifierNaive))
}

func (r *runner) breakdown() {
	r.ensureErrors()
	b, err := eval.RunKindBreakdown(r.ctx, r.sp.FISQL(fisql.Options{Routing: true}), r.sp.DS, r.spErrs)
	if err != nil {
		log.Fatalf("breakdown: %v", err)
	}
	eval.PrintKindBreakdown(os.Stdout, b)
}

func (r *runner) cost() {
	r.ensureErrors()
	var costs []eval.Cost
	builders := []func(c fisql.Client) fisql.Corrector{
		func(c fisql.Client) fisql.Corrector {
			return &fisql.QueryRewrite{Client: c, DS: r.sp.DS, Store: r.sp.Store, K: r.sp.K}
		},
		func(c fisql.Client) fisql.Corrector {
			return &fisql.FISQL{Client: c, DS: r.sp.DS, Store: r.sp.Store, K: r.sp.K}
		},
		func(c fisql.Client) fisql.Corrector {
			return &fisql.FISQL{Client: c, DS: r.sp.DS, Store: r.sp.Store, K: r.sp.K, Routing: true}
		},
	}
	for _, build := range builders {
		cost, _, err := eval.MeasureCost(r.ctx, r.sp.Client, r.sp.DS, r.spErrs, build)
		if err != nil {
			log.Fatalf("cost: %v", err)
		}
		costs = append(costs, cost)
	}
	eval.PrintCosts(os.Stdout, costs)
}

func (r *runner) table3() {
	r.ensureErrors()
	fAEP := r.correct(r.ae, r.ae.FISQL(fisql.Options{Routing: true}), r.aeErrs, 1, false)
	fSP := r.correct(r.sp, r.sp.FISQL(fisql.Options{Routing: true}), r.spErrs, 1, false)
	hAEP := r.correct(r.ae, r.ae.FISQL(fisql.Options{Routing: true, Highlights: true}), r.aeErrs, 1, true)
	hSP := r.correct(r.sp, r.sp.FISQL(fisql.Options{Routing: true, Highlights: true}), r.spErrs, 1, true)
	eval.PrintTable2(os.Stdout, "Table 3 — % instances corrected with highlights", []eval.Table2Row{
		{Method: "FISQL", AEP: fAEP.Pct(1), Spider: fSP.Pct(1)},
		{Method: "FISQL (+ Highlighting)", AEP: hAEP.Pct(1), Spider: hSP.Pct(1)},
	})
}
