// Command fisql-server exposes the Assistant over a REST API — the headless
// equivalent of the AEP Assistant panel (paper Figure 3). Sessions are
// created per client and hold the ask/feedback state.
//
//	POST   /v1/sessions                 {"corpus":"aep","db":"..."}    -> {"session_id":...}
//	POST   /v1/sessions/{id}/ask        {"question":"..."}             -> answer
//	POST   /v1/sessions/{id}/feedback   {"text":"...","highlight":"…"} -> answer
//	GET    /v1/sessions/{id}/history
//	GET    /v1/sessions/{id}/events     (SSE; resume with Last-Event-ID)
//	DELETE /v1/sessions/{id}
//	GET    /v1/databases?corpus=aep
//	GET    /v1/healthz
//	GET    /v1/metrics[?format=prometheus]
//
// Observability is on by default (-metrics=false disables it): every
// request is traced through the pipeline stages and /v1/metrics serves the
// per-stage latency histograms plus the plan-cache, answer-memo, render
// cache and session-store counters of both corpora. -pprof additionally
// mounts net/http/pprof under /debug/pprof/.
//
// The session store is capped (-max-sessions, true-LRU eviction) and can
// expire idle sessions (-session-ttl), so a long-running server does not
// grow without bound. On SIGINT/SIGTERM the server stops accepting
// connections and drains in-flight asks before exiting.
//
// With -journal the server is durable: every session lifecycle event is
// appended to a CRC-framed journal before the response is acknowledged,
// and a restart replays the journal through the normal ask/feedback
// pipeline — deterministic recovery, truncating any torn tail a crash left
// behind. -journal-fsync picks the sync policy (always/interval/off) and
// -journal-compact bounds the dead bytes deleted sessions leave in the
// file. Graceful shutdown checkpoints the journal down to the live
// sessions.
//
// Overload safety is opt-in and two-layered. -llm-batch coalesces
// concurrent model calls into deadline-bounded batches (-llm-batch-wait,
// -llm-batch-concurrency) in front of each corpus's client. -ask-limit and
// -feedback-limit bound pipeline concurrency per endpoint class with a
// small admission queue (-admission-queue, -queue-timeout); a request that
// finds the queue full is shed with 429 and a Retry-After hint
// (-retry-after) instead of degrading everyone's latency. Streaming
// clients send "Accept: text/event-stream" on ask and receive the answer
// stage by stage (see DESIGN.md, "Async serving").
//
// Every session also has a shared event stream: GET
// /v1/sessions/{id}/events fans out each acknowledged lifecycle event
// (open, sql, explanation, result, done, feedback, delete) to any number
// of concurrent SSE subscribers, each event carrying a monotonic id: for
// Last-Event-ID resume. -pubsub-ring sizes the per-session replay ring
// (see DESIGN.md, "Session-event fanout").
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fisql"
	"fisql/internal/cluster"
	"fisql/internal/llm"
	"fisql/internal/obs"
	"fisql/internal/persist"
	"fisql/internal/server"
)

// sysAdapter adapts the public System to the server's SessionFactory,
// pinning the full FISQL configuration (routing + highlights).
type sysAdapter struct{ *fisql.System }

func (a sysAdapter) NewSession(db string) *fisql.Session {
	return a.Session(db, fisql.Options{Routing: true, Highlights: true})
}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions,
		"max live sessions before LRU eviction (<= 0 for unlimited)")
	sessionTTL := flag.Duration("session-ttl", 0,
		"expire sessions idle for longer than this (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long shutdown waits for in-flight requests to finish")
	metrics := flag.Bool("metrics", true,
		"per-stage tracing, cache counters and the /v1/metrics endpoint")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	maxBody := flag.Int64("max-body-bytes", server.DefaultMaxBodyBytes,
		"largest accepted POST body; bigger requests answer 413")
	journalPath := flag.String("journal", "",
		"session journal file for crash-safe durability (empty disables)")
	journalFsync := flag.String("journal-fsync", "interval",
		"journal fsync policy: always, interval or off")
	journalCompact := flag.Int64("journal-compact", persist.DefaultCompactMinBytes,
		"compact the journal once this many dead bytes accumulate (<= 0 disables auto-compaction)")
	llmBatch := flag.Int("llm-batch", 0,
		"coalesce concurrent LLM calls into batches of up to this size (0 disables batching)")
	llmBatchWait := flag.Duration("llm-batch-wait", llm.DefaultMaxWait,
		"how long a collecting batch waits for company before flushing")
	llmBatchConc := flag.Int("llm-batch-concurrency", 0,
		"max LLM batches in flight at once (0 for unlimited)")
	askLimit := flag.Int("ask-limit", 0,
		"max concurrently running asks before admission queueing (0 for unlimited)")
	fbLimit := flag.Int("feedback-limit", 0,
		"max concurrently running feedback requests before admission queueing (0 for unlimited)")
	admissionQueue := flag.Int("admission-queue", 0,
		"bounded admission queue depth per endpoint class (0 defaults to the class's limit)")
	queueTimeout := flag.Duration("queue-timeout", server.DefaultQueueTimeout,
		"shed a queued request after waiting this long for a slot")
	retryAfter := flag.Duration("retry-after", server.DefaultRetryAfter,
		"Retry-After hint on load-shedding 429 responses (rounded up to whole seconds)")
	pubsubRing := flag.Int("pubsub-ring", 0,
		"per-session event-fanout ring capacity in events; a /v1/sessions/{id}/events subscriber can resume via Last-Event-ID from at most this far back before the gap is reported as dropped (0 for the default, 256)")
	ragIndex := flag.String("rag-index", "exact",
		"demonstration retrieval index: exact (linear scan) or hnsw (sublinear graph + exact rerank)")
	ragFold := flag.Bool("rag-fold", false,
		"fold successful feedback corrections back into the retrieval store as new demonstrations")
	clusterNode := flag.String("cluster-node", "",
		"run as a cluster node under this member id (requires -cluster-members and -journal)")
	clusterMembers := flag.String("cluster-members", "",
		`bootstrap cluster membership as "id=http://host:port,id2=..."`)
	clusterReplica := flag.String("cluster-replica-journal", "",
		"replica journal path for -cluster-node (default: <journal>.replica)")
	clusterRouter := flag.Bool("cluster-router", false,
		"run as the cluster's client-facing router over -cluster-members instead of a corpus server")
	clusterHealthInterval := flag.Duration("cluster-health-interval", time.Second,
		"router health-probe period (-cluster-router; <= 0 disables the background probe)")
	clusterHealthTimeout := flag.Duration("cluster-health-timeout", cluster.DefaultHealthTimeout,
		"router health-probe timeout (-cluster-router)")
	clusterToken := flag.String("cluster-token", "",
		"shared secret gating every /internal/* cluster endpoint; must match across the router and all nodes (empty leaves them open — then keep the ports off client-reachable networks)")
	flag.Parse()

	if *clusterRouter {
		runRouter(*addr, *clusterMembers, *clusterToken, *clusterHealthInterval,
			*clusterHealthTimeout, *metrics, *drainTimeout)
		return
	}

	sp, err := fisql.NewSpiderSystem()
	if err != nil {
		log.Fatalf("build spider corpus: %v", err)
	}
	ae, err := fisql.NewExperiencePlatformSystem()
	if err != nil {
		log.Fatalf("build experience-platform corpus: %v", err)
	}
	for _, sys := range []*fisql.System{sp, ae} {
		if err := sys.SetDemoIndex(*ragIndex); err != nil {
			log.Fatalf("-rag-index: %v", err)
		}
		sys.FoldFeedback = *ragFold
	}
	if *llmBatch > 0 {
		// Wrap before Observe so the batcher's counters register too. Every
		// consumer of the system's client (assistant, correctors) now batches.
		cfg := llm.BatcherConfig{MaxBatch: *llmBatch, MaxWait: *llmBatchWait,
			MaxConcurrent: *llmBatchConc}
		sp.Client = llm.NewBatcher(sp.Client, cfg)
		ae.Client = llm.NewBatcher(ae.Client, cfg)
	}
	opts := []server.Option{
		server.WithMaxSessions(*maxSessions),
		server.WithSessionTTL(*sessionTTL),
		server.WithMaxBodyBytes(*maxBody),
	}
	if *pubsubRing > 0 {
		opts = append(opts, server.WithPubSubRing(*pubsubRing))
	}
	var m *obs.Metrics
	if *metrics {
		m = obs.NewMetrics()
		// Both corpora report into one registry; duplicate-name sources sum.
		sp.Observe(m.Registry)
		ae.Observe(m.Registry)
		if *clusterNode == "" {
			// In cluster mode the node installs the metrics itself, adding
			// the fisql_cluster_* series.
			opts = append(opts, server.WithMetrics(m))
		}
	}
	if *pprofOn {
		opts = append(opts, server.WithPprof())
	}
	if *askLimit > 0 || *fbLimit > 0 {
		opts = append(opts, server.WithAdmission(server.AdmissionConfig{
			AskConcurrency:      *askLimit,
			FeedbackConcurrency: *fbLimit,
			Queue:               *admissionQueue,
			QueueTimeout:        *queueTimeout,
			RetryAfter:          *retryAfter,
		}))
	}
	var journal *persist.Journal
	if *journalPath != "" {
		policy, err := persist.ParseFsyncPolicy(*journalFsync)
		if err != nil {
			log.Fatalf("-journal-fsync: %v", err)
		}
		journal, err = persist.Open(*journalPath, persist.Options{
			Fsync:           policy,
			CompactMinBytes: *journalCompact,
		})
		if err != nil {
			log.Fatalf("open journal: %v", err)
		}
		if *clusterNode == "" {
			opts = append(opts, server.WithJournal(journal))
		}
	}
	factories := map[string]server.SessionFactory{
		"spider": sysAdapter{sp},
		"aep":    sysAdapter{ae},
	}
	var handler http.Handler
	var h *server.Server
	var replica *persist.Journal
	if *clusterNode != "" {
		// Cluster node: the embedded server journals its own sessions, the
		// replica journal holds follower copies, and /internal/* speaks the
		// inter-node protocol. The router pins clients here by session id.
		if journal == nil {
			log.Fatal("-cluster-node requires -journal: a node without local durability cannot honor promotion")
		}
		members, err := parseMembers(*clusterMembers)
		if err != nil {
			log.Fatalf("-cluster-members: %v", err)
		}
		found := false
		for _, mem := range members {
			found = found || mem.ID == *clusterNode
		}
		if !found {
			log.Fatalf("-cluster-node %q does not appear in -cluster-members", *clusterNode)
		}
		replicaPath := *clusterReplica
		if replicaPath == "" {
			replicaPath = *journalPath + ".replica"
		}
		policy, _ := persist.ParseFsyncPolicy(*journalFsync)
		replica, err = persist.Open(replicaPath, persist.Options{
			Fsync:           policy,
			CompactMinBytes: *journalCompact,
		})
		if err != nil {
			log.Fatalf("open replica journal: %v", err)
		}
		node := cluster.NewNode(cluster.NodeConfig{
			ID:            *clusterNode,
			Members:       members,
			Systems:       factories,
			Journal:       journal,
			Replica:       replica,
			Metrics:       m,
			AuthToken:     *clusterToken,
			ServerOptions: opts,
		})
		handler, h = node, node.Server()
	} else {
		h = server.New(factories, opts...)
		handler = h
	}
	if journal != nil {
		rec := h.Recovery()
		log.Printf("journal %s: recovered %d sessions from %d records in %s (skipped %d, truncated %d torn bytes)",
			*journalPath, rec.Sessions, rec.Records, rec.Duration.Round(time.Millisecond),
			rec.Skipped, rec.TruncatedBytes)
		if rec.CheckpointErr != nil {
			log.Printf("journal %s: post-recovery checkpoint failed: %v (next restart may replay evicted sessions)",
				*journalPath, rec.CheckpointErr)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("fisql-server listening on http://%s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listener failed before any signal (port in use, ...).
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("fisql-server shutting down, draining in-flight requests (up to %s)", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		if journal != nil {
			// Final checkpoint: compact to the live sessions and sync, so
			// the next start replays exactly the surviving state.
			if err := journal.Close(); err != nil {
				log.Printf("close journal: %v", err)
			}
		}
		if replica != nil {
			if err := replica.Close(); err != nil {
				log.Printf("close replica journal: %v", err)
			}
		}
	}
}

// parseMembers decodes the "id=url,id2=url2" -cluster-members form.
func parseMembers(s string) ([]cluster.Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty membership")
	}
	var members []cluster.Member
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad member %q (want id=http://host:port)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("duplicate member id %q", id)
		}
		seen[id] = true
		members = append(members, cluster.Member{ID: id, Addr: strings.TrimSuffix(addr, "/")})
	}
	if len(members) < 2 {
		return nil, fmt.Errorf("need at least 2 members, got %d", len(members))
	}
	return members, nil
}

// runRouter serves the cluster router: session-id issuance, rendezvous
// pinning, forwarding, health probing and failover driving. It builds no
// corpora — the nodes own those.
func runRouter(addr, membersSpec, token string, healthInterval, healthTimeout time.Duration,
	metricsOn bool, drainTimeout time.Duration) {
	members, err := parseMembers(membersSpec)
	if err != nil {
		log.Fatalf("-cluster-members: %v", err)
	}
	cfg := cluster.RouterConfig{
		Members:        members,
		HealthInterval: healthInterval,
		HealthTimeout:  healthTimeout,
		AuthToken:      token,
	}
	if metricsOn {
		cfg.Metrics = obs.NewMetrics()
	}
	rt := cluster.NewRouter(cfg)
	srv := &http.Server{Addr: addr, Handler: rt}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("fisql-server router over %d nodes listening on http://%s", len(members), addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("router shutting down, draining in-flight requests (up to %s)", drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		rt.Close()
	}
}
