// Command fisql-server exposes the Assistant over a REST API — the headless
// equivalent of the AEP Assistant panel (paper Figure 3). Sessions are
// created per client and hold the ask/feedback state.
//
//	POST   /v1/sessions                 {"corpus":"aep","db":"..."}    -> {"session_id":...}
//	POST   /v1/sessions/{id}/ask        {"question":"..."}             -> answer
//	POST   /v1/sessions/{id}/feedback   {"text":"...","highlight":"…"} -> answer
//	GET    /v1/sessions/{id}/history
//	DELETE /v1/sessions/{id}
//	GET    /v1/databases?corpus=aep
//	GET    /v1/healthz
//	GET    /v1/metrics[?format=prometheus]
//
// Observability is on by default (-metrics=false disables it): every
// request is traced through the pipeline stages and /v1/metrics serves the
// per-stage latency histograms plus the plan-cache, answer-memo, render
// cache and session-store counters of both corpora. -pprof additionally
// mounts net/http/pprof under /debug/pprof/.
//
// The session store is capped (-max-sessions, true-LRU eviction) and can
// expire idle sessions (-session-ttl), so a long-running server does not
// grow without bound. On SIGINT/SIGTERM the server stops accepting
// connections and drains in-flight asks before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"fisql"
	"fisql/internal/obs"
	"fisql/internal/server"
)

// sysAdapter adapts the public System to the server's SessionFactory,
// pinning the full FISQL configuration (routing + highlights).
type sysAdapter struct{ *fisql.System }

func (a sysAdapter) NewSession(db string) *fisql.Session {
	return a.Session(db, fisql.Options{Routing: true, Highlights: true})
}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions,
		"max live sessions before LRU eviction (<= 0 for unlimited)")
	sessionTTL := flag.Duration("session-ttl", 0,
		"expire sessions idle for longer than this (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long shutdown waits for in-flight requests to finish")
	metrics := flag.Bool("metrics", true,
		"per-stage tracing, cache counters and the /v1/metrics endpoint")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	sp, err := fisql.NewSpiderSystem()
	if err != nil {
		log.Fatalf("build spider corpus: %v", err)
	}
	ae, err := fisql.NewExperiencePlatformSystem()
	if err != nil {
		log.Fatalf("build experience-platform corpus: %v", err)
	}
	opts := []server.Option{
		server.WithMaxSessions(*maxSessions),
		server.WithSessionTTL(*sessionTTL),
	}
	if *metrics {
		m := obs.NewMetrics()
		// Both corpora report into one registry; duplicate-name sources sum.
		sp.Observe(m.Registry)
		ae.Observe(m.Registry)
		opts = append(opts, server.WithMetrics(m))
	}
	if *pprofOn {
		opts = append(opts, server.WithPprof())
	}
	h := server.New(map[string]server.SessionFactory{
		"spider": sysAdapter{sp},
		"aep":    sysAdapter{ae},
	}, opts...)

	srv := &http.Server{Addr: *addr, Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("fisql-server listening on http://%s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listener failed before any signal (port in use, ...).
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("fisql-server shutting down, draining in-flight requests (up to %s)", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}
}
