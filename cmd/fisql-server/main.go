// Command fisql-server exposes the Assistant over a REST API — the headless
// equivalent of the AEP Assistant panel (paper Figure 3). Sessions are
// created per client and hold the ask/feedback state.
//
//	POST   /v1/sessions                 {"corpus":"aep","db":"..."}    -> {"session_id":...}
//	POST   /v1/sessions/{id}/ask        {"question":"..."}             -> answer
//	POST   /v1/sessions/{id}/feedback   {"text":"...","highlight":"…"} -> answer
//	GET    /v1/sessions/{id}/history
//	DELETE /v1/sessions/{id}
//	GET    /v1/databases?corpus=aep
//	GET    /v1/healthz
//
// The session store is capped (-max-sessions, true-LRU eviction) and can
// expire idle sessions (-session-ttl), so a long-running server does not
// grow without bound. On SIGINT/SIGTERM the server stops accepting
// connections and drains in-flight asks before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"fisql"
	"fisql/internal/server"
)

// sysAdapter adapts the public System to the server's SessionFactory,
// pinning the full FISQL configuration (routing + highlights).
type sysAdapter struct{ *fisql.System }

func (a sysAdapter) NewSession(db string) *fisql.Session {
	return a.Session(db, fisql.Options{Routing: true, Highlights: true})
}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions,
		"max live sessions before LRU eviction (<= 0 for unlimited)")
	sessionTTL := flag.Duration("session-ttl", 0,
		"expire sessions idle for longer than this (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long shutdown waits for in-flight requests to finish")
	flag.Parse()

	sp, err := fisql.NewSpiderSystem()
	if err != nil {
		log.Fatalf("build spider corpus: %v", err)
	}
	ae, err := fisql.NewExperiencePlatformSystem()
	if err != nil {
		log.Fatalf("build experience-platform corpus: %v", err)
	}
	h := server.New(map[string]server.SessionFactory{
		"spider": sysAdapter{sp},
		"aep":    sysAdapter{ae},
	}, server.WithMaxSessions(*maxSessions), server.WithSessionTTL(*sessionTTL))

	srv := &http.Server{Addr: *addr, Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("fisql-server listening on http://%s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listener failed before any signal (port in use, ...).
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("fisql-server shutting down, draining in-flight requests (up to %s)", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}
}
