// Command fisql-server exposes the Assistant over a REST API — the headless
// equivalent of the AEP Assistant panel (paper Figure 3). Sessions are
// created per client and hold the ask/feedback state.
//
//	POST   /v1/sessions                 {"corpus":"aep","db":"..."}    -> {"session_id":...}
//	POST   /v1/sessions/{id}/ask        {"question":"..."}             -> answer
//	POST   /v1/sessions/{id}/feedback   {"text":"...","highlight":"…"} -> answer
//	GET    /v1/sessions/{id}/history
//	DELETE /v1/sessions/{id}
//	GET    /v1/databases?corpus=aep
//
// The session map is capped (-max-sessions, oldest-first eviction), so a
// long-running server does not grow without bound.
package main

import (
	"flag"
	"log"
	"net/http"

	"fisql"
	"fisql/internal/server"
)

// sysAdapter adapts the public System to the server's SessionFactory,
// pinning the full FISQL configuration (routing + highlights).
type sysAdapter struct{ *fisql.System }

func (a sysAdapter) NewSession(db string) *fisql.Session {
	return a.Session(db, fisql.Options{Routing: true, Highlights: true})
}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions,
		"max live sessions before oldest-first eviction (<= 0 for unlimited)")
	flag.Parse()

	sp, err := fisql.NewSpiderSystem()
	if err != nil {
		log.Fatalf("build spider corpus: %v", err)
	}
	ae, err := fisql.NewExperiencePlatformSystem()
	if err != nil {
		log.Fatalf("build experience-platform corpus: %v", err)
	}
	srv := server.New(map[string]server.SessionFactory{
		"spider": sysAdapter{sp},
		"aep":    sysAdapter{ae},
	}, server.WithMaxSessions(*maxSessions))
	log.Printf("fisql-server listening on http://%s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}
