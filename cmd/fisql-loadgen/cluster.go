package main

// The -cluster scenario: bring up -cluster-nodes in-process cluster nodes
// behind a router, drive mixed session traffic at them, kill the busiest
// node at -cluster-kill-at of the run with no warning — connections torn,
// journals abandoned mid-stream — and keep driving. The run fails if any
// client ever saw a status other than a clean 200/429, if any acknowledged
// turn is missing or altered after failover, or if the survivors' metrics
// endpoints stop being well-formed. This is the CI chaos gate: the
// promotion path runs on every commit, not just when a node really dies.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fisql"
	"fisql/internal/cluster"
	"fisql/internal/obs"
	"fisql/internal/persist"
	"fisql/internal/persist/persisttest"
	"fisql/internal/server"
)

type clusterConfig struct {
	Nodes          int
	KillAt         float64
	HealthInterval time.Duration
	Sessions       int
	Duration       time.Duration
	Seed           int64
}

// lateHandler lets the node's HTTP server exist before the node does: the
// members list needs every node's address, and the nodes need the members
// list. 503 before wiring — nothing runs that early.
type lateHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not wired yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

type clusterNode struct {
	id      string
	node    *cluster.Node
	ts      *httptest.Server
	journal *persist.Journal
	replica *persist.Journal
	killed  bool
}

// kill tears the node down the way a crash would: open connections die,
// new dials are refused, and both journals are abandoned without a
// checkpoint.
func (cn *clusterNode) kill() {
	cn.killed = true
	cn.ts.Listener.Close()
	cn.ts.CloseClientConnections()
	cn.journal.Crash()
	cn.replica.Crash()
}

// clusterWorker is one session's traffic source. acked records the text of
// every question the router acknowledged with 200, in send order — the
// ledger the post-run audit checks the final histories against.
type clusterWorker struct {
	id     string
	db     string
	acked  []string
	counts map[int]int
	// violations are responses outside the clean contract: anything but
	// 200 on this scenario's requests (no admission control is configured,
	// so even 429 would be a surprise, but the gate tolerates it by
	// design — overload shedding is legitimate).
	violations []string
}

func runCluster(sys *fisql.System, corpus string, dbs []string,
	questionsByDB map[string][]string, cfg clusterConfig) int {
	if cfg.Nodes < 2 {
		log.Fatal("cluster scenario: need at least 2 nodes (one to kill, one to promote)")
	}
	if cfg.KillAt <= 0 || cfg.KillAt >= 1 {
		log.Fatal("cluster scenario: -cluster-kill-at must be in (0, 1)")
	}
	dir, err := os.MkdirTemp("", "fisql-cluster-*")
	if err != nil {
		log.Fatalf("cluster scenario: %v", err)
	}
	defer os.RemoveAll(dir)

	// Servers first (for addresses), then members, then nodes.
	systems := map[string]server.SessionFactory{corpus: sysAdapter{sys}}
	nodes := make([]*clusterNode, cfg.Nodes)
	members := make([]cluster.Member, cfg.Nodes)
	handlers := make([]*lateHandler, cfg.Nodes)
	for i := range nodes {
		id := fmt.Sprintf("node-%d", i)
		handlers[i] = &lateHandler{}
		ts := httptest.NewServer(handlers[i])
		nodes[i] = &clusterNode{id: id, ts: ts}
		members[i] = cluster.Member{ID: id, Addr: ts.URL}
	}
	for i, cn := range nodes {
		j, err := persist.Open(filepath.Join(dir, cn.id+".journal"), persist.Options{Fsync: persist.FsyncInterval})
		if err != nil {
			log.Fatalf("cluster scenario: open journal: %v", err)
		}
		rep, err := persist.Open(filepath.Join(dir, cn.id+".replica"), persist.Options{Fsync: persist.FsyncInterval})
		if err != nil {
			log.Fatalf("cluster scenario: open replica: %v", err)
		}
		cn.journal, cn.replica = j, rep
		cn.node = cluster.NewNode(cluster.NodeConfig{
			ID:      cn.id,
			Members: members,
			Systems: systems,
			Journal: j,
			Replica: rep,
			Metrics: obs.NewMetrics(),
			// A real token even in the in-process harness, so the smoke run
			// exercises the authenticated inter-node path end to end.
			AuthToken: "loadgen-cluster-token",
		})
		handlers[i].set(cn.node)
	}
	rm := obs.NewMetrics()
	rt := cluster.NewRouter(cluster.RouterConfig{
		Members:        members,
		Metrics:        rm,
		HealthInterval: cfg.HealthInterval,
		AuthToken:      "loadgen-cluster-token",
	})
	rts := httptest.NewServer(rt)
	defer func() {
		rt.Close()
		rts.Close()
		for _, cn := range nodes {
			if cn.killed {
				continue
			}
			cn.ts.Close()
			cn.journal.Close()
			cn.replica.Close()
		}
	}()
	base := rts.URL
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Sessions * 2,
		MaxIdleConnsPerHost: cfg.Sessions * 2,
	}}

	// Phase 1: load every session until the kill point, then quiesce so the
	// pre-kill capture is an exact acknowledged state, not a racing one.
	workers := make([]*clusterWorker, cfg.Sessions)
	for w := range workers {
		db := dbs[w%len(dbs)]
		id, err := createSession(client, base, corpus, db)
		if err != nil {
			log.Fatalf("cluster scenario: create session: %v", err)
		}
		workers[w] = &clusterWorker{id: id, db: db, counts: map[int]int{}}
	}
	drive := func(until time.Time) {
		var wg sync.WaitGroup
		for w, cw := range workers {
			wg.Add(1)
			go func(w int, cw *clusterWorker) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
				questions := questionsByDB[cw.db]
				for time.Now().Before(until) {
					if len(cw.acked) > 0 && rng.Intn(4) == 0 {
						code, err := getStatus(client, base+"/v1/sessions/"+cw.id+"/history")
						cw.note(code, err, "history")
						continue
					}
					q := questions[rng.Intn(len(questions))]
					code, err := postStatus(client, base+"/v1/sessions/"+cw.id+"/ask",
						map[string]string{"question": q})
					cw.note(code, err, "ask")
					if code == http.StatusOK {
						cw.acked = append(cw.acked, q)
					}
				}
			}(w, cw)
		}
		wg.Wait()
	}
	start := time.Now()
	drive(start.Add(time.Duration(cfg.KillAt * float64(cfg.Duration))))

	ids := make([]string, len(workers))
	for i, cw := range workers {
		ids[i] = cw.id
	}
	preKill, err := persisttest.Capture(client, base, ids)
	if err != nil {
		log.Fatalf("cluster scenario: pre-kill capture: %v", err)
	}

	// Kill the busiest node. No MarkDead call: detection must come from the
	// paths a real deployment has — a failing forward or the health probe.
	var victim *clusterNode
	for _, cn := range nodes {
		if victim == nil || len(cn.node.Server().SessionIDs()) > len(victim.node.Server().SessionIDs()) {
			victim = cn
		}
	}
	victimOwned := len(victim.node.Server().SessionIDs())
	log.Printf("cluster scenario: killing %s (%d sessions) at %s",
		victim.id, victimOwned, time.Since(start).Round(time.Millisecond))
	victim.kill()

	// Phase 2: same traffic through the failover window and beyond, plus
	// fresh sessions to prove creates survive the membership change.
	drive(start.Add(cfg.Duration))
	for i := 0; i < 3; i++ {
		id, err := createSession(client, base, corpus, dbs[i%len(dbs)])
		if err != nil {
			log.Fatalf("cluster scenario: post-failover create: %v", err)
		}
		if code, err := postStatus(client, base+"/v1/sessions/"+id+"/ask",
			map[string]string{"question": questionsByDB[dbs[i%len(dbs)]][0]}); err != nil || code != http.StatusOK {
			log.Fatalf("cluster scenario: post-failover ask on %s: code %d err %v", id, code, err)
		}
	}

	// Audit. (1) Clean statuses only.
	failures := 0
	statuses := map[int]int{}
	for _, cw := range workers {
		for code, n := range cw.counts {
			statuses[code] += n
		}
		for _, v := range cw.violations {
			log.Printf("FAIL: session %s: %s", cw.id, v)
			failures++
		}
	}
	// (2) Acknowledged pre-kill turns survive byte-for-byte as a whole-turn
	// prefix, and (3) every turn acked in either phase appears in order in
	// the final history (at-least-once: duplicates tolerated, loss not).
	for _, cw := range workers {
		post, err := persisttest.History(client, base, cw.id)
		if err != nil {
			log.Printf("FAIL: session %s lost after failover: %v", cw.id, err)
			failures++
			continue
		}
		if !persisttest.TurnsPrefix(preKill[cw.id], post) {
			log.Printf("FAIL: session %s: pre-kill acknowledged turns not an intact prefix", cw.id)
			failures++
		}
		if miss := missingAcked(post, cw.acked); miss != "" {
			log.Printf("FAIL: session %s: acked turn lost: %q", cw.id, miss)
			failures++
		}
	}
	// (4) The failover actually ran and was observed.
	rsnap := rm.Registry.Snapshot()
	if rsnap.Counters["fisql_cluster_failovers_total"] < 1 {
		log.Printf("FAIL: router recorded no failover")
		failures++
	}
	if promoted := rsnap.Counters["fisql_cluster_sessions_promoted_total"]; promoted < int64(victimOwned) {
		log.Printf("FAIL: %d sessions promoted, victim owned %d", promoted, victimOwned)
		failures++
	}
	if got := len(rt.Members()); got != cfg.Nodes-1 {
		log.Printf("FAIL: %d members after failover, want %d", got, cfg.Nodes-1)
		failures++
	}
	// (5) Metrics stay scrapeable and well-formed on the router and every
	// survivor.
	for _, target := range append([]string{base}, survivorURLs(nodes)...) {
		if err := checkMetricsEndpoint(client, target); err != nil {
			log.Printf("FAIL: metrics on %s: %v", target, err)
			failures++
		}
	}

	totalAcked := 0
	for _, cw := range workers {
		totalAcked += len(cw.acked)
	}
	fmt.Printf("fisql-loadgen cluster: corpus=%s nodes=%d sessions=%d duration=%s kill_at=%.0f%% victim=%s\n",
		corpus, cfg.Nodes, cfg.Sessions, cfg.Duration, cfg.KillAt*100, victim.id)
	fmt.Printf("acked_turns=%d promoted=%d statuses=%v failures=%d\n",
		totalAcked, rsnap.Counters["fisql_cluster_sessions_promoted_total"], statuses, failures)
	if failures > 0 {
		log.Printf("FAIL: %d cluster-scenario violations", failures)
		return 1
	}
	return 0
}

// note tallies one response; anything outside {200, 429} — including a
// transport error, which the router exists to absorb — is a violation.
func (cw *clusterWorker) note(code int, err error, op string) {
	if err != nil {
		cw.violations = append(cw.violations, fmt.Sprintf("%s: transport error: %v", op, err))
		return
	}
	cw.counts[code]++
	if code != http.StatusOK && code != http.StatusTooManyRequests {
		cw.violations = append(cw.violations, fmt.Sprintf("%s: status %d", op, code))
	}
}

// missingAcked returns the first acknowledged question that does not
// appear, in order, among the history's user turns; "" when all survive.
// Greedy subsequence: duplicate questions and at-least-once re-applies
// both match naturally.
func missingAcked(history []byte, acked []string) string {
	var h struct {
		Turns []struct {
			Role string `json:"role"`
			Text string `json:"text"`
		} `json:"turns"`
	}
	if err := json.Unmarshal(history, &h); err != nil {
		return fmt.Sprintf("<unparseable history: %v>", err)
	}
	i := 0
	for _, turn := range h.Turns {
		if i < len(acked) && turn.Role == "user" && turn.Text == acked[i] {
			i++
		}
	}
	if i < len(acked) {
		return acked[i]
	}
	return ""
}

func survivorURLs(nodes []*clusterNode) []string {
	var out []string
	for _, cn := range nodes {
		if !cn.killed {
			out = append(out, cn.ts.URL)
		}
	}
	return out
}

// checkMetricsEndpoint requires a 200 /v1/metrics whose JSON body decodes
// to a snapshot with sane histograms.
func checkMetricsEndpoint(client *http.Client, base string) error {
	resp, err := client.Get(base + "/v1/metrics")
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("body did not decode: %v", err)
	}
	for name, h := range snap.Histograms {
		if h.Count < 0 || len(h.Buckets) == 0 {
			return fmt.Errorf("histogram %s malformed", name)
		}
	}
	return nil
}

// postStatus posts and returns the status code; unlike post it treats
// non-200 as data, not an error — the cluster scenario audits codes itself.
func postStatus(client *http.Client, url string, payload map[string]string) (int, error) {
	body, _ := json.Marshal(payload)
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	drain(resp)
	return resp.StatusCode, nil
}

func getStatus(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	drain(resp)
	return resp.StatusCode, nil
}
