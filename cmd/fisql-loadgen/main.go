// Command fisql-loadgen drives the REST server with concurrent mixed
// session traffic and reports throughput and latency percentiles, so
// serving-path changes have a measured trajectory (see BENCH_serving.json
// for the recorded baselines).
//
// Each of -sessions workers owns one server session and loops over a
// weighted ask/feedback/history mix (-mix) until -duration elapses.
// Questions are drawn deterministically (-seed) from the corpus's own
// examples, so runs are comparable across machines and revisions.
//
// By default the target server is built in-process and served over a
// loopback listener (the whole stack, HTTP included, is measured without
// needing a separate process). Pass -addr to aim at a live fisql-server
// instead — e.g. a pre-change binary for paired A/B runs.
//
// With -metrics (the default) the in-process server runs with observability
// enabled; after the run the generator scrapes /v1/metrics, verifies both
// the JSON and Prometheus forms are well-formed, and folds the per-stage
// latency breakdown and cache counters into the report. Against -addr the
// scrape is attempted and skipped with a warning if the target was started
// without -metrics.
//
// With -restart the generator runs the kill-and-restart durability
// scenario instead of a timed load run: it journals a -restart-sessions
// sized workload through an in-process server, captures every session's
// /history bytes, simulates a crash (the journal file is abandoned
// mid-stream and a torn partial record is appended, as an interrupted
// write would leave), recovers a fresh server from the journal and
// requires each recovered history to be byte-identical to its pre-crash
// capture — failing if recovery exceeds -restart-budget.
//
// With -overload the generator runs the admission-control scenario (see
// overload.go): an in-process server with a real capacity limit is driven
// at capacity and then at -overload-factor times capacity, asserting that
// accepted asks keep a bounded p99, that excess load is shed exclusively
// with clean 429 + Retry-After responses, and that a kill-and-restart
// recovery after the overload loses no acknowledged turn.
//
// With -fanout the generator runs the session-event fanout scenario (see
// fanout.go): -fanout-subscribers concurrent /v1/sessions/{id}/events
// subscribers — one of which disconnects mid-run and resumes with
// Last-Event-ID, plus one stalled reader that never drains its
// connection — watch a session being driven through -fanout-asks turns,
// and the run fails unless every subscriber saw the same gap-free,
// duplicate-free, byte-identical event sequence, the stalled reader did
// not degrade ask p99 versus a no-subscriber baseline, and the pubsub
// metrics account for every published event. With -fanout-cluster the
// same contract is asserted across a mid-run owner kill in an in-process
// cluster: subscribers reconnect through the router and the promoted
// follower must continue the exact sequence.
//
//	fisql-loadgen -corpus aep -sessions 32 -duration 5s
//	fisql-loadgen -addr 127.0.0.1:8321 -corpus spider -mix 6:2:2 -json out.json
//	fisql-loadgen -corpus aep -restart -restart-sessions 1000
//	fisql-loadgen -corpus aep -overload -overload-duration 1s
//	fisql-loadgen -corpus aep -fanout -fanout-subscribers 4
//	fisql-loadgen -corpus aep -fanout -fanout-cluster
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fisql"
	"fisql/internal/obs"
	"fisql/internal/persist"
	"fisql/internal/persist/persisttest"
	"fisql/internal/server"
)

type sysAdapter struct{ *fisql.System }

func (a sysAdapter) NewSession(db string) *fisql.Session {
	return a.Session(db, fisql.Options{Routing: true, Highlights: true})
}

// feedbackTexts is the pool of generic feedback lines workers send; the
// pipeline handles arbitrary text, these just exercise the repair path.
var feedbackTexts = []string{
	"we are in 2024",
	"only show the top 5",
	"sort the results by the first column",
	"remove the limit",
	"count them instead",
}

type opKind int

const (
	opAsk opKind = iota
	opFeedback
	opHistory
	numOps
)

type workerStats struct {
	latencies []time.Duration
	opCounts  [numOps]int64
	errors    int64
}

type report struct {
	Corpus   string  `json:"corpus"`
	Sessions int     `json:"sessions"`
	Duration string  `json:"duration"`
	Mix      string  `json:"mix"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	RPS      float64 `json:"rps"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
	Maxms    float64 `json:"max_ms"`
	Asks     int64   `json:"asks"`
	Feedback int64   `json:"feedback"`
	History  int64   `json:"history"`
	// Stages and Counters come from the target's /v1/metrics scrape; empty
	// when metrics are disabled or the target does not expose them.
	Stages   []stageJSON      `json:"stages,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// stageJSON is one pipeline stage's server-side latency summary.
type stageJSON struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

func main() {
	log.SetFlags(0)
	corpus := flag.String("corpus", "aep", "corpus to drive: aep or spider")
	ragIndex := flag.String("rag-index", "exact",
		"demonstration retrieval index of the in-process server: exact or hnsw")
	ragFold := flag.Bool("rag-fold", false,
		"fold successful feedback corrections back into the in-process server's retrieval store")
	sessions := flag.Int("sessions", 32, "concurrent sessions (one worker each)")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	mix := flag.String("mix", "5:3:2", "ask:feedback:history request weights")
	addr := flag.String("addr", "", "target a live fisql-server (host:port); empty runs one in-process")
	seed := flag.Int64("seed", 1, "question-selection seed")
	jsonOut := flag.String("json", "", "also write the report as JSON to this file (- for stdout)")
	metricsOn := flag.Bool("metrics", true,
		"enable server metrics (in-process) and report the per-stage breakdown")
	restart := flag.Bool("restart", false,
		"run the kill-and-restart durability scenario instead of a timed load run")
	restartSessions := flag.Int("restart-sessions", 1000,
		"sessions to journal in the restart scenario")
	restartBudget := flag.Duration("restart-budget", time.Second,
		"fail the restart scenario if journal recovery takes longer than this")
	overload := flag.Bool("overload", false,
		"run the admission-control overload scenario instead of a timed load run")
	overloadFactor := flag.Int("overload-factor", 4,
		"overload phase drives this many times the server's ask capacity")
	overloadDuration := flag.Duration("overload-duration", 2*time.Second,
		"length of each overload phase (at-capacity, then overloaded)")
	overloadAskLimit := flag.Int("overload-ask-limit", 8,
		"admission ask concurrency limit of the overloaded server")
	overloadQueue := flag.Int("overload-queue", 0,
		"admission queue depth of the overloaded server (0 = the ask limit)")
	overloadQueueTimeout := flag.Duration("overload-queue-timeout", 25*time.Millisecond,
		"queue timeout of the overloaded server")
	overloadLLMLatency := flag.Duration("overload-llm-latency", 5*time.Millisecond,
		"injected per-model-call latency that defines the server's capacity")
	overloadP99Factor := flag.Float64("overload-p99-factor", 3.0,
		"fail if overload p99 exceeds this multiple of the at-capacity p99 (plus slack)")
	overloadP99Slack := flag.Duration("overload-p99-slack", 30*time.Millisecond,
		"absolute allowance added to the overload p99 bound, for timer noise")
	clusterOn := flag.Bool("cluster", false,
		"run the cluster failover chaos scenario instead of a timed load run")
	clusterNodes := flag.Int("cluster-nodes", 3,
		"in-process cluster nodes behind the router in the cluster scenario")
	clusterKillAt := flag.Float64("cluster-kill-at", 0.5,
		"kill the busiest node after this fraction of -duration (0 < f < 1)")
	clusterHealthInterval := flag.Duration("cluster-health-interval", 25*time.Millisecond,
		"router health-probe period in the cluster scenario")
	fanoutOn := flag.Bool("fanout", false,
		"run the session-event fanout scenario instead of a timed load run")
	fanoutSubscribers := flag.Int("fanout-subscribers", 4,
		"concurrent /events subscribers in the fanout scenario (one reconnects mid-run)")
	fanoutAsks := flag.Int("fanout-asks", 6,
		"turns driven through the observed session in the fanout scenario")
	fanoutCluster := flag.Bool("fanout-cluster", false,
		"run the fanout scenario against an in-process cluster with a mid-run owner kill")
	fanoutP99Factor := flag.Float64("fanout-p99-factor", 4.0,
		"fail if ask p99 with subscribers attached exceeds this multiple of the baseline (plus slack)")
	fanoutP99Slack := flag.Duration("fanout-p99-slack", 50*time.Millisecond,
		"absolute allowance added to the fanout p99 bound, for timer noise")
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		log.Fatal(err)
	}

	// The corpus is built locally even in -addr mode: it is deterministic,
	// and it supplies the question pool for the workers.
	var sys *fisql.System
	switch *corpus {
	case "aep":
		sys, err = fisql.NewExperiencePlatformSystem()
	case "spider":
		sys, err = fisql.NewSpiderSystem()
	default:
		log.Fatalf("unknown corpus %q (want aep or spider)", *corpus)
	}
	if err != nil {
		log.Fatalf("build corpus: %v", err)
	}
	if err := sys.SetDemoIndex(*ragIndex); err != nil {
		log.Fatalf("-rag-index: %v", err)
	}
	sys.FoldFeedback = *ragFold
	questionsByDB := map[string][]string{}
	for _, e := range sys.DS.Examples {
		questionsByDB[e.DB] = append(questionsByDB[e.DB], e.Question)
	}
	dbs := sys.Databases()

	if *restart {
		if *addr != "" {
			log.Fatal("-restart drives an in-process server; it cannot be combined with -addr")
		}
		os.Exit(runRestart(sys, *corpus, dbs, questionsByDB, *restartSessions, *restartBudget))
	}
	if *clusterOn {
		if *addr != "" {
			log.Fatal("-cluster drives an in-process cluster; it cannot be combined with -addr")
		}
		os.Exit(runCluster(sys, *corpus, dbs, questionsByDB, clusterConfig{
			Nodes:          *clusterNodes,
			KillAt:         *clusterKillAt,
			HealthInterval: *clusterHealthInterval,
			Sessions:       *sessions,
			Duration:       *duration,
			Seed:           *seed,
		}))
	}
	if *fanoutOn {
		if *addr != "" {
			log.Fatal("-fanout drives an in-process server; it cannot be combined with -addr")
		}
		os.Exit(runFanout(sys, *corpus, dbs, questionsByDB, fanoutConfig{
			Subscribers: *fanoutSubscribers,
			Asks:        *fanoutAsks,
			Cluster:     *fanoutCluster,
			Nodes:       *clusterNodes,
			P99Factor:   *fanoutP99Factor,
			P99Slack:    *fanoutP99Slack,
		}))
	}
	if *overload {
		if *addr != "" {
			log.Fatal("-overload drives an in-process server; it cannot be combined with -addr")
		}
		os.Exit(runOverload(sys, *corpus, dbs, questionsByDB, overloadConfig{
			Factor:       *overloadFactor,
			Duration:     *overloadDuration,
			AskLimit:     *overloadAskLimit,
			Queue:        *overloadQueue,
			QueueTimeout: *overloadQueueTimeout,
			LLMLatency:   *overloadLLMLatency,
			P99Factor:    *overloadP99Factor,
			P99Slack:     *overloadP99Slack,
		}))
	}

	base := "http://" + *addr
	inProcess := *addr == ""
	if inProcess {
		var opts []server.Option
		if *metricsOn {
			m := obs.NewMetrics()
			sys.Observe(m.Registry)
			opts = append(opts, server.WithMetrics(m))
		}
		ts := httptest.NewServer(server.New(map[string]server.SessionFactory{
			*corpus: sysAdapter{sys},
		}, opts...))
		defer ts.Close()
		base = ts.URL
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *sessions * 2,
		MaxIdleConnsPerHost: *sessions * 2,
	}}

	stats := make([]workerStats, *sessions)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			db := dbs[w%len(dbs)]
			questions := questionsByDB[db]
			if len(questions) == 0 {
				return
			}
			st := &stats[w]
			sid, err := createSession(client, base, *corpus, db)
			if err != nil {
				st.errors++
				return
			}
			sessURL := base + "/v1/sessions/" + sid
			asked := false
			for time.Now().Before(deadline) {
				op := pickOp(rng, weights)
				// Feedback and history need a query/turns to be meaningful;
				// the first request of every session is always an ask.
				if !asked {
					op = opAsk
				}
				var reqErr error
				t0 := time.Now()
				switch op {
				case opAsk:
					q := questions[rng.Intn(len(questions))]
					reqErr = post(client, sessURL+"/ask", map[string]string{"question": q})
					if reqErr == nil {
						asked = true
					}
				case opFeedback:
					fb := feedbackTexts[rng.Intn(len(feedbackTexts))]
					reqErr = post(client, sessURL+"/feedback", map[string]string{"text": fb})
				case opHistory:
					reqErr = get(client, sessURL+"/history")
				}
				st.latencies = append(st.latencies, time.Since(t0))
				st.opCounts[op]++
				if reqErr != nil {
					st.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge and summarize.
	var all []time.Duration
	rep := report{Corpus: *corpus, Sessions: *sessions, Duration: duration.String(), Mix: *mix}
	for i := range stats {
		all = append(all, stats[i].latencies...)
		rep.Errors += stats[i].errors
		rep.Asks += stats[i].opCounts[opAsk]
		rep.Feedback += stats[i].opCounts[opFeedback]
		rep.History += stats[i].opCounts[opHistory]
	}
	rep.Requests = int64(len(all))
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.RPS = float64(len(all)) / elapsed.Seconds()
	rep.P50ms = ms(percentile(all, 50))
	rep.P95ms = ms(percentile(all, 95))
	rep.P99ms = ms(percentile(all, 99))
	if len(all) > 0 {
		rep.Maxms = ms(all[len(all)-1])
	}

	if *metricsOn {
		scrapeMetrics(client, base, inProcess, &rep)
	}

	fmt.Printf("fisql-loadgen: corpus=%s sessions=%d duration=%s mix=%s target=%s\n",
		rep.Corpus, rep.Sessions, rep.Duration, rep.Mix, targetName(*addr))
	fmt.Printf("requests=%d (ask=%d feedback=%d history=%d) errors=%d\n",
		rep.Requests, rep.Asks, rep.Feedback, rep.History, rep.Errors)
	fmt.Printf("rps=%.1f latency p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		rep.RPS, rep.P50ms, rep.P95ms, rep.P99ms, rep.Maxms)
	printStageBreakdown(&rep)

	if *jsonOut != "" {
		buf, _ := json.MarshalIndent(rep, "", "  ")
		buf = append(buf, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			log.Fatalf("write %s: %v", *jsonOut, err)
		}
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

func targetName(addr string) string {
	if addr == "" {
		return "in-process"
	}
	return addr
}

// runRestart is the kill-and-restart durability scenario. Returns the
// process exit code.
func runRestart(sys *fisql.System, corpus string, dbs []string,
	questionsByDB map[string][]string, n int, budget time.Duration) int {
	dir, err := os.MkdirTemp("", "fisql-restart-*")
	if err != nil {
		log.Fatalf("restart scenario: %v", err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sessions.journal")

	journal, err := persist.Open(path, persist.Options{Fsync: persist.FsyncInterval})
	if err != nil {
		log.Fatalf("restart scenario: open journal: %v", err)
	}
	factories := map[string]server.SessionFactory{corpus: sysAdapter{sys}}
	ts := httptest.NewServer(server.New(factories, server.WithJournal(journal)))
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}

	// Journal a mixed workload: every session asks once, every third also
	// sends feedback, so replay exercises both pipeline paths.
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		db := dbs[i%len(dbs)]
		questions := questionsByDB[db]
		if len(questions) == 0 {
			continue
		}
		sid, err := createSession(client, ts.URL, corpus, db)
		if err != nil {
			log.Fatalf("restart scenario: %v", err)
		}
		sessURL := ts.URL + "/v1/sessions/" + sid
		if err := post(client, sessURL+"/ask",
			map[string]string{"question": questions[i%len(questions)]}); err != nil {
			log.Fatalf("restart scenario: %v", err)
		}
		if i%3 == 0 {
			if err := post(client, sessURL+"/feedback",
				map[string]string{"text": feedbackTexts[i%len(feedbackTexts)]}); err != nil {
				log.Fatalf("restart scenario: %v", err)
			}
		}
		ids = append(ids, sid)
	}

	// Pre-crash captures: the byte-exact /history body of every session.
	capture, err := persisttest.Capture(client, ts.URL, ids)
	if err != nil {
		log.Fatalf("restart scenario: %v", err)
	}

	// Kill: stop serving and abandon the journal without a checkpoint, then
	// append a torn partial record — the tail an interrupted in-flight
	// write (never acknowledged to any client) would leave behind.
	ts.Close()
	if err := journal.Crash(); err != nil {
		log.Fatalf("restart scenario: crash: %v", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		log.Fatalf("restart scenario: %v", err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe}); err != nil {
		log.Fatalf("restart scenario: torn append: %v", err)
	}
	f.Close()

	// Restart: recovery is Open plus the replay New performs.
	t0 := time.Now()
	journal2, err := persist.Open(path, persist.Options{Fsync: persist.FsyncInterval})
	if err != nil {
		log.Fatalf("restart scenario: reopen journal: %v", err)
	}
	srv2 := server.New(factories, server.WithJournal(journal2))
	recovery := time.Since(t0)
	rec := srv2.Recovery()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer journal2.Close()

	diffs := persisttest.DiffHistories(client, ts2.URL, capture)
	for _, d := range diffs {
		log.Printf("restart scenario: %s", d)
	}
	mismatches := len(diffs)

	fmt.Printf("fisql-loadgen restart: corpus=%s sessions=%d records=%d torn_bytes=%d\n",
		corpus, rec.Sessions, rec.Records, rec.TruncatedBytes)
	fmt.Printf("recovery=%s (budget %s) history_diffs=%d\n",
		recovery.Round(time.Millisecond), budget, mismatches)
	if mismatches > 0 {
		log.Printf("FAIL: %d recovered histories differ from their pre-crash capture", mismatches)
		return 1
	}
	if recovery > budget {
		log.Printf("FAIL: recovery took %s, budget %s", recovery, budget)
		return 1
	}
	return 0
}

// getBody fetches url and returns the raw response body.
func getBody(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return body, nil
}

// scrapeMetrics pulls /v1/metrics in both forms, checks they are
// well-formed, and folds the per-stage histograms and the cache counters
// into the report. Malformed output from the in-process server is a bug in
// this repo and fatal; a -addr target may simply run without -metrics, so
// absence there only warns.
func scrapeMetrics(client *http.Client, base string, inProcess bool, rep *report) {
	fail := func(format string, args ...any) {
		if inProcess {
			log.Fatalf("metrics scrape: "+format, args...)
		}
		log.Printf("warning: metrics scrape skipped: "+format, args...)
	}
	resp, err := client.Get(base + "/v1/metrics")
	if err != nil {
		fail("%v", err)
		return
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		fail("status %d (target started without -metrics?)", resp.StatusCode)
		return
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		fail("JSON body did not decode: %v", err)
		return
	}
	if len(snap.Histograms) == 0 {
		fail("snapshot has no histograms")
		return
	}
	for name, h := range snap.Histograms {
		if h.Count < 0 || len(h.Buckets) == 0 {
			fail("histogram %s malformed: count=%d buckets=%d", name, h.Count, len(h.Buckets))
			return
		}
		if last := h.Buckets[len(h.Buckets)-1]; last.LE != "+Inf" || last.Count != h.Count {
			fail("histogram %s: last bucket %s=%d, want +Inf=%d", name, last.LE, last.Count, h.Count)
			return
		}
	}

	// The Prometheus text form must expose the same families.
	presp, err := client.Get(base + "/v1/metrics?format=prometheus")
	if err != nil {
		fail("prometheus form: %v", err)
		return
	}
	defer drain(presp)
	ptext, err := io.ReadAll(presp.Body)
	if err != nil || presp.StatusCode != http.StatusOK {
		fail("prometheus form: status %d err %v", presp.StatusCode, err)
		return
	}
	for _, want := range []string{"# TYPE ", "_bucket{le=\"+Inf\"}", "_count"} {
		if !strings.Contains(string(ptext), want) {
			fail("prometheus text missing %q", want)
			return
		}
	}

	var stageNames []string
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "fisql_stage_") {
			stageNames = append(stageNames, name)
		}
	}
	sort.Strings(stageNames)
	for _, name := range stageNames {
		h := snap.Histograms[name]
		if h.Count == 0 {
			continue
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(name, "fisql_stage_"), "_seconds")
		rep.Stages = append(rep.Stages, stageJSON{
			Stage: stage, Count: h.Count, P50ms: h.P50ms, P95ms: h.P95ms, P99ms: h.P99ms,
		})
	}
	rep.Counters = snap.Counters
}

// printStageBreakdown renders the scraped per-stage summary under the
// client-side numbers.
func printStageBreakdown(rep *report) {
	if len(rep.Stages) == 0 {
		return
	}
	fmt.Println("server-side stage breakdown:")
	fmt.Printf("  %-10s %10s %10s %10s %10s\n", "stage", "count", "p50_ms", "p95_ms", "p99_ms")
	for _, s := range rep.Stages {
		fmt.Printf("  %-10s %10d %10.3f %10.3f %10.3f\n", s.Stage, s.Count, s.P50ms, s.P95ms, s.P99ms)
	}
	var names []string
	for name := range rep.Counters {
		if strings.Contains(name, "_cache_") || strings.Contains(name, "_memo_") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %s=%d\n", name, rep.Counters[name])
	}
}

func parseMix(s string) ([numOps]int, error) {
	var w [numOps]int
	parts := strings.Split(s, ":")
	if len(parts) != int(numOps) {
		return w, fmt.Errorf("bad -mix %q: want ask:feedback:history", s)
	}
	total := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return w, fmt.Errorf("bad -mix weight %q", p)
		}
		w[i] = n
		total += n
	}
	if total == 0 {
		return w, fmt.Errorf("bad -mix %q: all weights zero", s)
	}
	return w, nil
}

func pickOp(rng *rand.Rand, w [numOps]int) opKind {
	total := 0
	for _, n := range w {
		total += n
	}
	r := rng.Intn(total)
	for op, n := range w {
		if r < n {
			return opKind(op)
		}
		r -= n
	}
	return opAsk
}

func createSession(client *http.Client, base, corpus, db string) (string, error) {
	body, _ := json.Marshal(map[string]string{"corpus": corpus, "db": db})
	resp, err := client.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("create session: status %d", resp.StatusCode)
	}
	var out struct {
		SessionID string `json:"session_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.SessionID == "" {
		return "", fmt.Errorf("create session: bad body (%v)", err)
	}
	return out.SessionID, nil
}

func post(client *http.Client, url string, payload map[string]string) error {
	body, _ := json.Marshal(payload)
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return nil
}

func get(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return nil
}

// drain consumes the body so the transport can reuse the connection.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
