// The -overload scenario: drive the server far past saturation and verify
// that admission control keeps the accepted work fast and the refused work
// clean.
//
// The scenario builds an in-process server whose capacity is real: the
// answer memo is disabled (every ask exercises the model path), the
// simulated model is slowed by an injected per-call latency, calls are
// batched like a production deployment, and asks are admission-limited.
// Phase one drives exactly as many workers as the ask limit — the server at
// capacity — and records the baseline p99. Phase two drives
// -overload-factor times as many workers and asserts that overload degrades
// the service the only two ways it is allowed to:
//
//   - accepted asks stay fast: overload p99 <= -overload-p99-factor x the
//     at-capacity p99, plus -overload-p99-slack for timer noise. Admission
//     guarantees this structurally — an accepted ask waits at most the
//     queue timeout plus one bounded service time.
//   - everything else is shed, and shed cleanly: status 429 with a valid
//     whole-seconds Retry-After and the standard {"error": ...} JSON body.
//     No other failure status appears, and the server's shed counter equals
//     the number of 429s the client saw (nothing dropped silently).
//
// The run is journaled, and ends with the kill-and-restart check from the
// -restart scenario: crash the journal mid-stream, leave a torn record,
// recover a fresh server, and require every session's /history to be
// byte-identical to its pre-crash capture — under overload, acknowledged
// turns survive and shed turns leave no trace.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"fisql"
	"fisql/internal/llm"
	"fisql/internal/obs"
	"fisql/internal/persist"
	"fisql/internal/server"
)

// overloadConfig carries the -overload-* flags.
type overloadConfig struct {
	Factor       int           // offered load as a multiple of capacity
	Duration     time.Duration // per phase
	AskLimit     int           // admission concurrency = server capacity
	Queue        int           // admission queue depth (0 = AskLimit)
	QueueTimeout time.Duration // shed a queued ask after this wait
	LLMLatency   time.Duration // injected per-model-call latency
	P99Factor    float64       // allowed overload p99 growth over baseline
	P99Slack     time.Duration // absolute allowance on top, for timer noise
}

// phaseResult aggregates one load phase.
type phaseResult struct {
	oks       []time.Duration // latencies of 200 asks, sorted ascending
	sheds     int64           // 429 responses
	badSheds  int64           // 429s with an invalid Retry-After or body
	others    int64           // any status that is neither 200 nor 429
	transport int64           // requests that failed below HTTP
	ids       []string        // session ids the phase created
}

// runOverload executes the scenario and returns the process exit code.
func runOverload(sys *fisql.System, corpus string, dbs []string,
	questionsByDB map[string][]string, cfg overloadConfig) int {
	// Real capacity: every ask reaches the model (no memo) and every model
	// call costs LLMLatency, batched as a production deployment would be.
	innerClient := sys.Client
	sys.Client = llm.NewBatcher(&llm.Flaky{Inner: innerClient, Latency: cfg.LLMLatency},
		llm.BatcherConfig{})
	sys.Memo = nil

	dir, err := os.MkdirTemp("", "fisql-overload-*")
	if err != nil {
		log.Fatalf("overload scenario: %v", err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sessions.journal")
	journal, err := persist.Open(path, persist.Options{Fsync: persist.FsyncInterval})
	if err != nil {
		log.Fatalf("overload scenario: open journal: %v", err)
	}
	m := obs.NewMetrics()
	sys.Observe(m.Registry)
	factories := map[string]server.SessionFactory{corpus: sysAdapter{sys}}
	ts := httptest.NewServer(server.New(factories,
		server.WithMetrics(m),
		server.WithJournal(journal),
		server.WithAdmission(server.AdmissionConfig{
			AskConcurrency: cfg.AskLimit,
			Queue:          cfg.Queue,
			QueueTimeout:   cfg.QueueTimeout,
		})))
	workers := cfg.AskLimit * cfg.Factor
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
	}}

	ph1 := overloadPhase(client, ts.URL, corpus, dbs, questionsByDB, cfg.AskLimit, cfg.Duration, 1)
	ph2 := overloadPhase(client, ts.URL, corpus, dbs, questionsByDB, workers, cfg.Duration, 1001)

	p99Base := percentile(ph1.oks, 99)
	p99Over := percentile(ph2.oks, 99)
	bound := time.Duration(float64(p99Base)*cfg.P99Factor) + cfg.P99Slack

	fails := 0
	check := func(ok bool, format string, args ...any) {
		if !ok {
			log.Printf("FAIL: "+format, args...)
			fails++
		}
	}
	check(ph1.transport == 0 && ph1.others == 0,
		"at-capacity phase had %d transport errors, %d unexpected statuses",
		ph1.transport, ph1.others)
	check(ph1.sheds == 0,
		"at-capacity phase shed %d asks; %d workers against an ask limit of %d should never queue past the limit",
		ph1.sheds, cfg.AskLimit, cfg.AskLimit)
	check(len(ph1.oks) > 0, "at-capacity phase completed no asks")
	check(ph2.transport == 0, "overload phase had %d transport errors", ph2.transport)
	check(ph2.others == 0,
		"overload produced %d responses that were neither 200 nor 429 — shedding must be the only failure mode",
		ph2.others)
	check(len(ph2.oks) > 0, "overload phase completed no asks")
	check(ph2.sheds > 0, "overload at %dx capacity shed nothing; admission control is not engaging", cfg.Factor)
	check(ph2.badSheds == 0,
		"%d shed responses had an invalid Retry-After or a malformed error body", ph2.badSheds)
	check(p99Over <= bound,
		"overload p99 %s exceeds bound %s (%.1fx at-capacity p99 %s + %s slack)",
		p99Over.Round(time.Microsecond), bound.Round(time.Microsecond),
		cfg.P99Factor, p99Base.Round(time.Microsecond), cfg.P99Slack)

	fails += checkOverloadMetrics(client, ts.URL, ph1.sheds+ph2.sheds)

	// Pre-crash captures, then the kill-and-restart durability check.
	ids := append(append([]string(nil), ph1.ids...), ph2.ids...)
	capture := make(map[string][]byte, len(ids))
	captureErrs := 0
	for _, sid := range ids {
		body, err := getBody(client, ts.URL+"/v1/sessions/"+sid+"/history")
		if err != nil {
			log.Printf("FAIL: overload capture %s: %v", sid, err)
			captureErrs++
			continue
		}
		capture[sid] = body
	}
	fails += captureErrs
	ts.Close()
	if err := journal.Crash(); err != nil {
		log.Fatalf("overload scenario: crash: %v", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		log.Fatalf("overload scenario: %v", err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe}); err != nil {
		log.Fatalf("overload scenario: torn append: %v", err)
	}
	f.Close()

	// Recovery replays every acknowledged ask; swap the latency injection
	// back out so replay runs at full speed (the injected delay models the
	// network, and answers are identical either way).
	sys.Client = innerClient
	t0 := time.Now()
	journal2, err := persist.Open(path, persist.Options{Fsync: persist.FsyncInterval})
	if err != nil {
		log.Fatalf("overload scenario: reopen journal: %v", err)
	}
	srv2 := server.New(factories, server.WithJournal(journal2))
	recovery := time.Since(t0)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer journal2.Close()
	mismatches := 0
	for _, sid := range ids {
		if _, ok := capture[sid]; !ok {
			continue
		}
		body, err := getBody(client, ts2.URL+"/v1/sessions/"+sid+"/history")
		if err != nil {
			log.Printf("FAIL: overload recovered history %s: %v", sid, err)
			mismatches++
			continue
		}
		if !bytes.Equal(body, capture[sid]) {
			log.Printf("FAIL: overload history %s differs after recovery", sid)
			mismatches++
		}
	}
	fails += mismatches

	fmt.Printf("fisql-loadgen overload: corpus=%s ask_limit=%d factor=%dx phase=%s llm_latency=%s\n",
		corpus, cfg.AskLimit, cfg.Factor, cfg.Duration, cfg.LLMLatency)
	fmt.Printf("at-capacity: oks=%d sheds=%d p99=%s\n",
		len(ph1.oks), ph1.sheds, p99Base.Round(time.Microsecond))
	fmt.Printf("overload:    oks=%d sheds=%d p99=%s (bound %s)\n",
		len(ph2.oks), ph2.sheds, p99Over.Round(time.Microsecond), bound.Round(time.Microsecond))
	fmt.Printf("recovery=%s sessions=%d history_diffs=%d\n",
		recovery.Round(time.Millisecond), len(ids), mismatches)
	if fails > 0 {
		log.Printf("FAIL: overload scenario: %d checks failed", fails)
		return 1
	}
	return 0
}

// overloadPhase drives `workers` ask loops for d and aggregates outcomes.
func overloadPhase(client *http.Client, base, corpus string, dbs []string,
	questionsByDB map[string][]string, workers int, d time.Duration, seed int64) phaseResult {
	var mu sync.Mutex
	var res phaseResult
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			db := dbs[w%len(dbs)]
			questions := questionsByDB[db]
			if len(questions) == 0 {
				return
			}
			sid, err := createSession(client, base, corpus, db)
			if err != nil {
				mu.Lock()
				res.transport++
				mu.Unlock()
				return
			}
			askURL := base + "/v1/sessions/" + sid + "/ask"
			var local phaseResult
			for time.Now().Before(deadline) {
				q := questions[rng.Intn(len(questions))]
				t0 := time.Now()
				status, retryAfter, bodyOK, err := postAsk(client, askURL, q)
				lat := time.Since(t0)
				switch {
				case err != nil:
					local.transport++
				case status == http.StatusOK:
					local.oks = append(local.oks, lat)
				case status == http.StatusTooManyRequests:
					local.sheds++
					if n, err := strconv.Atoi(retryAfter); err != nil || n < 1 || !bodyOK {
						local.badSheds++
					}
					// Back off briefly. Not the full Retry-After hint: the
					// phase's job is to keep the server saturated, the hint's
					// validity is asserted above.
					time.Sleep(time.Millisecond)
				default:
					local.others++
				}
			}
			mu.Lock()
			res.oks = append(res.oks, local.oks...)
			res.sheds += local.sheds
			res.badSheds += local.badSheds
			res.others += local.others
			res.transport += local.transport
			res.ids = append(res.ids, sid)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	sort.Slice(res.oks, func(i, j int) bool { return res.oks[i] < res.oks[j] })
	return res
}

// postAsk posts one question and reports (status, Retry-After header,
// whether a non-200 body is the standard JSON error shape).
func postAsk(client *http.Client, url, question string) (status int, retryAfter string, bodyOK bool, err error) {
	body, _ := json.Marshal(map[string]string{"question": question})
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", false, err
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, "", true, nil
	}
	var errBody struct {
		Error string `json:"error"`
	}
	bodyOK = json.NewDecoder(resp.Body).Decode(&errBody) == nil && errBody.Error != "" &&
		resp.Header.Get("Content-Type") == "application/json"
	return resp.StatusCode, resp.Header.Get("Retry-After"), bodyOK, nil
}

// checkOverloadMetrics verifies /v1/metrics after the run: both forms
// well-formed (via scrapeMetrics), the new batch and admission series
// present, and the server's shed counter equal to the 429s the client
// counted. Returns the number of failed checks.
func checkOverloadMetrics(client *http.Client, base string, clientSheds int64) int {
	rep := &report{}
	scrapeMetrics(client, base, true, rep) // fatal on malformed output
	fails := 0
	check := func(ok bool, format string, args ...any) {
		if !ok {
			log.Printf("FAIL: "+format, args...)
			fails++
		}
	}
	for _, name := range []string{
		"fisql_llm_batch_calls_total",
		"fisql_llm_batches_total",
		"fisql_admission_ask_admitted_total",
		"fisql_admission_ask_shed_total",
	} {
		_, ok := rep.Counters[name]
		check(ok, "metrics snapshot is missing counter %s", name)
	}
	check(rep.Counters["fisql_llm_batches_total"] > 0,
		"no batches reached the model backend; the batcher is not engaging")
	check(rep.Counters["fisql_admission_ask_shed_total"] == clientSheds,
		"server shed counter %d != client-observed 429s %d — responses were lost or double-counted",
		rep.Counters["fisql_admission_ask_shed_total"], clientSheds)
	resp, err := client.Get(base + "/v1/metrics")
	if err != nil {
		check(false, "re-scrape metrics: %v", err)
		return fails
	}
	defer drain(resp)
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		check(false, "re-scrape metrics: %v", err)
		return fails
	}
	for _, name := range []string{
		"fisql_llm_batch_wait_seconds",
		"fisql_admission_ask_queue_seconds",
	} {
		_, ok := snap.Histograms[name]
		check(ok, "metrics snapshot is missing histogram %s", name)
	}
	return fails
}
