package main

// The -fanout scenario: subscribe -fanout-subscribers readers to one
// session's /events stream and drive a turn workload at it, asserting the
// fanout contract end to end:
//
//   - every subscriber sees a gap-free sequence (contiguous SSE ids from
//     1) with no duplicates and no "dropped" markers;
//   - all subscribers' streams are byte-identical, including one that
//     disconnects mid-run and resumes with Last-Event-ID;
//   - a stalled subscriber (connected, never reading) does not degrade
//     ask latency: the fanout p99 is bounded against a no-subscriber
//     baseline run of the same workload;
//   - the pubsub metrics are well-formed and account for every event.
//
// With -fanout-cluster the same assertions run against an in-process
// 3-node cluster whose session owner is killed mid-run: every subscriber
// is torn and must reconnect through the router, and the promoted
// follower must continue the exact sequence — the deterministic-replay
// re-seeding guarantee, checked from the wire.

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fisql"
	"fisql/internal/cluster"
	"fisql/internal/obs"
	"fisql/internal/persist"
	"fisql/internal/server"
)

type fanoutConfig struct {
	Subscribers int
	Asks        int
	Cluster     bool
	Nodes       int
	P99Factor   float64
	P99Slack    time.Duration
}

type fanoutEvent struct {
	id   string
	name string
	data string
}

// readFanoutEvent parses one SSE frame: optional id line, event line, data
// line, blank terminator.
func readFanoutEvent(br *bufio.Reader) (fanoutEvent, error) {
	var ev fanoutEvent
	started := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimSuffix(line, "\n")
		if line == "" {
			if started {
				return ev, nil
			}
			continue
		}
		started = true
		switch {
		case strings.HasPrefix(line, "id: "):
			ev.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		default:
			return ev, fmt.Errorf("unexpected SSE line %q", line)
		}
	}
}

// openEventStream subscribes to the session's fanout stream; from > 0
// resumes via Last-Event-ID.
func openEventStream(client *http.Client, base, sid string, from uint64) (*http.Response, *bufio.Reader, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/sessions/"+sid+"/events", nil)
	if err != nil {
		return nil, nil, err
	}
	if from > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(from, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, nil, fmt.Errorf("subscribe: status %d", resp.StatusCode)
	}
	return resp, bufio.NewReader(resp.Body), nil
}

// followEvents keeps a subscription alive until the terminal delete event:
// a torn connection (owner failover, injected reconnect) is resumed with
// Last-Event-ID, retrying through the promotion window. Returns the full
// event list as this subscriber saw it, reconnects included.
func followEvents(client *http.Client, base, sid string, reconnectAfter int) ([]fanoutEvent, error) {
	var events []fanoutEvent
	var last uint64
	reconnects := 0
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, br, err := openEventStream(client, base, sid, last)
		if err != nil {
			if time.Now().After(deadline) {
				return events, fmt.Errorf("resubscribe: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		for {
			if reconnectAfter > 0 && len(events) == reconnectAfter && reconnects == 0 {
				// Injected mid-run disconnect: drop the connection on purpose
				// and resume from the last delivered id.
				resp.Body.Close()
				reconnects++
				break
			}
			ev, err := readFanoutEvent(br)
			if err != nil {
				resp.Body.Close()
				if len(events) > 0 && events[len(events)-1].name == "delete" {
					return events, nil
				}
				break // torn mid-stream: resume from last
			}
			events = append(events, ev)
			if ev.name == "delete" {
				resp.Body.Close()
				return events, nil
			}
			if ev.id != "" {
				if n, perr := strconv.ParseUint(ev.id, 10, 64); perr == nil {
					last = n
				}
			}
		}
		if time.Now().After(deadline) {
			return events, fmt.Errorf("stream never reached the delete event")
		}
	}
}

// auditStreams checks every subscriber's event list for the fanout
// contract and cross-checks byte-identity against the first. Returns the
// number of violations logged.
func auditStreams(streams [][]fanoutEvent, wantEvents int) int {
	failures := 0
	for i, evs := range streams {
		if len(evs) != wantEvents {
			log.Printf("FAIL: subscriber %d saw %d events, want %d", i, len(evs), wantEvents)
			failures++
			continue
		}
		for j, ev := range evs {
			if ev.name == "dropped" {
				log.Printf("FAIL: subscriber %d event %d is a dropped marker", i, j)
				failures++
				continue
			}
			if want := strconv.Itoa(j + 1); ev.id != want {
				log.Printf("FAIL: subscriber %d event %d (%s) has id %q, want %q",
					i, j, ev.name, ev.id, want)
				failures++
			}
			if i > 0 && ev != streams[0][j] {
				log.Printf("FAIL: subscriber %d event %d differs from subscriber 0: %+v vs %+v",
					i, j, ev, streams[0][j])
				failures++
			}
		}
	}
	return failures
}

func deleteFanoutSession(client *http.Client, base, sid string) error {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+sid, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("delete %s: status %d", sid, resp.StatusCode)
	}
	return nil
}

// askLatencies drives n sequential asks and returns the sorted latencies.
func askLatencies(client *http.Client, base, sid string, questions []string, n int) ([]time.Duration, error) {
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		q := questions[i%len(questions)]
		t0 := time.Now()
		if err := post(client, base+"/v1/sessions/"+sid+"/ask",
			map[string]string{"question": q}); err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(t0))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, nil
}

func runFanout(sys *fisql.System, corpus string, dbs []string,
	questionsByDB map[string][]string, cfg fanoutConfig) int {
	if cfg.Subscribers < 2 {
		log.Fatal("fanout scenario: need at least 2 subscribers (one reconnects mid-run)")
	}
	// A wedged stream must fail CI, not hang it: every follow loop has its
	// own deadline, but a stuck ask (no client timeout, by design — streams
	// are long-lived) would otherwise block forever.
	watchdog := time.AfterFunc(5*time.Minute, func() {
		log.Fatal("fanout scenario: watchdog fired — a stream or request wedged")
	})
	defer watchdog.Stop()
	db := ""
	for _, d := range dbs {
		if len(questionsByDB[d]) > 0 {
			db = d
			break
		}
	}
	if db == "" {
		log.Fatal("fanout scenario: corpus has no example questions")
	}
	questions := questionsByDB[db]
	if cfg.Cluster {
		return runFanoutCluster(sys, corpus, db, questions, cfg)
	}

	m := obs.NewMetrics()
	ts := httptest.NewServer(server.New(map[string]server.SessionFactory{
		corpus: sysAdapter{sys},
	}, server.WithMetrics(m)))
	defer ts.Close()
	client := &http.Client{}

	// Baseline: the identical ask workload with no subscriber attached.
	baseSID, err := createSession(client, ts.URL, corpus, db)
	if err != nil {
		log.Fatalf("fanout scenario: %v", err)
	}
	baseline, err := askLatencies(client, ts.URL, baseSID, questions, cfg.Asks)
	if err != nil {
		log.Fatalf("fanout scenario: baseline ask: %v", err)
	}

	sid, err := createSession(client, ts.URL, corpus, db)
	if err != nil {
		log.Fatalf("fanout scenario: %v", err)
	}

	// Attach the subscribers: subscriber 0 will disconnect mid-run and
	// resume via Last-Event-ID; the rest follow straight through. One extra
	// stalled connection subscribes and never reads a byte — the hub's
	// non-blocking publish means it must not slow the asks below.
	wantEvents := 1 + 4*cfg.Asks + 1 // open + turns + delete
	streams := make([][]fanoutEvent, cfg.Subscribers)
	errs := make([]error, cfg.Subscribers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Subscribers; i++ {
		reconnectAfter := 0
		if i == 0 {
			reconnectAfter = 1 + 4*(cfg.Asks/2)
		}
		wg.Add(1)
		go func(i, reconnectAfter int) {
			defer wg.Done()
			streams[i], errs[i] = followEvents(client, ts.URL, sid, reconnectAfter)
		}(i, reconnectAfter)
	}
	stalled, _, err := openEventStream(client, ts.URL, sid, 0)
	if err != nil {
		log.Fatalf("fanout scenario: stalled subscriber: %v", err)
	}

	loaded, err := askLatencies(client, ts.URL, sid, questions, cfg.Asks)
	if err != nil {
		log.Fatalf("fanout scenario: loaded ask: %v", err)
	}
	if err := deleteFanoutSession(client, ts.URL, sid); err != nil {
		log.Fatalf("fanout scenario: %v", err)
	}
	wg.Wait()
	stalled.Body.Close()

	failures := 0
	for i, err := range errs {
		if err != nil {
			log.Printf("FAIL: subscriber %d: %v", i, err)
			failures++
		}
	}
	failures += auditStreams(streams, wantEvents)

	// Latency guard: the loaded p99 (subscribers + one stalled reader
	// attached) stays within factor*baseline + slack.
	basep99 := percentile(baseline, 99)
	loadp99 := percentile(loaded, 99)
	bound := time.Duration(float64(basep99)*cfg.P99Factor) + cfg.P99Slack
	if loadp99 > bound {
		log.Printf("FAIL: ask p99 with subscribers %.2fms exceeds bound %.2fms (baseline %.2fms)",
			ms(loadp99), ms(bound), ms(basep99))
		failures++
	}

	// Metrics: the hub accounted for every published event (both sessions'
	// workloads), replays recorded the resume, and no subscriber remains.
	snap := m.Registry.Snapshot()
	wantPublished := int64(2*(1+4*cfg.Asks) + 1) // two sessions, one deleted
	if got := snap.Counters["fisql_pubsub_published_total"]; got != wantPublished {
		log.Printf("FAIL: fisql_pubsub_published_total = %d, want %d", got, wantPublished)
		failures++
	}
	if got := snap.Counters["fisql_pubsub_replays_total"]; got < 1 {
		log.Printf("FAIL: fisql_pubsub_replays_total = %d, want >= 1 (one subscriber resumed)", got)
		failures++
	}
	if got := snap.Gauges["fisql_pubsub_subscribers"]; got != 0 {
		log.Printf("FAIL: fisql_pubsub_subscribers = %d after all streams closed, want 0", got)
		failures++
	}

	fmt.Printf("fisql-loadgen fanout: corpus=%s subscribers=%d asks=%d events=%d\n",
		corpus, cfg.Subscribers, cfg.Asks, wantEvents)
	fmt.Printf("ask p99 baseline=%.2fms with_subscribers=%.2fms bound=%.2fms published=%d failures=%d\n",
		ms(basep99), ms(loadp99), ms(bound), snap.Counters["fisql_pubsub_published_total"], failures)
	if failures > 0 {
		log.Printf("FAIL: %d fanout violations", failures)
		return 1
	}
	return 0
}

// runFanoutCluster reruns the fanout contract against an in-process
// cluster with a mid-run owner kill: every subscriber reconnects through
// the router and the promoted follower continues the sequence.
func runFanoutCluster(sys *fisql.System, corpus, db string, questions []string, cfg fanoutConfig) int {
	if cfg.Nodes < 2 {
		log.Fatal("fanout scenario: -cluster-nodes must be at least 2")
	}
	dir, err := os.MkdirTemp("", "fisql-fanout-*")
	if err != nil {
		log.Fatalf("fanout scenario: %v", err)
	}
	defer os.RemoveAll(dir)

	systems := map[string]server.SessionFactory{corpus: sysAdapter{sys}}
	nodes := make([]*clusterNode, cfg.Nodes)
	members := make([]cluster.Member, cfg.Nodes)
	handlers := make([]*lateHandler, cfg.Nodes)
	for i := range nodes {
		id := fmt.Sprintf("node-%d", i)
		handlers[i] = &lateHandler{}
		ts := httptest.NewServer(handlers[i])
		nodes[i] = &clusterNode{id: id, ts: ts}
		members[i] = cluster.Member{ID: id, Addr: ts.URL}
	}
	for i, cn := range nodes {
		j, err := persist.Open(filepath.Join(dir, cn.id+".journal"), persist.Options{Fsync: persist.FsyncInterval})
		if err != nil {
			log.Fatalf("fanout scenario: open journal: %v", err)
		}
		rep, err := persist.Open(filepath.Join(dir, cn.id+".replica"), persist.Options{Fsync: persist.FsyncInterval})
		if err != nil {
			log.Fatalf("fanout scenario: open replica: %v", err)
		}
		cn.journal, cn.replica = j, rep
		cn.node = cluster.NewNode(cluster.NodeConfig{
			ID:        cn.id,
			Members:   members,
			Systems:   systems,
			Journal:   j,
			Replica:   rep,
			Metrics:   obs.NewMetrics(),
			AuthToken: "loadgen-fanout-token",
		})
		handlers[i].set(cn.node)
	}
	rt := cluster.NewRouter(cluster.RouterConfig{
		Members:   members,
		AuthToken: "loadgen-fanout-token",
	})
	rts := httptest.NewServer(rt)
	defer func() {
		rt.Close()
		rts.Close()
		for _, cn := range nodes {
			if cn.killed {
				continue
			}
			cn.ts.Close()
			cn.journal.Close()
			cn.replica.Close()
		}
	}()
	base := rts.URL
	client := &http.Client{}

	sid, err := createSession(client, base, corpus, db)
	if err != nil {
		log.Fatalf("fanout scenario: %v", err)
	}
	wantEvents := 1 + 4*cfg.Asks + 1
	streams := make([][]fanoutEvent, cfg.Subscribers)
	errs := make([]error, cfg.Subscribers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			streams[i], errs[i] = followEvents(client, base, sid, 0)
		}(i)
	}

	firstHalf := cfg.Asks / 2
	if _, err := askLatencies(client, base, sid, questions, firstHalf); err != nil {
		log.Fatalf("fanout scenario: pre-kill ask: %v", err)
	}

	// Kill the owner mid-run: every subscriber's stream is torn and must
	// resume against the promoted follower with no sequence regress.
	var victim *clusterNode
	for _, cn := range nodes {
		for _, owned := range cn.node.Server().SessionIDs() {
			if owned == sid {
				victim = cn
			}
		}
	}
	if victim == nil {
		log.Fatal("fanout scenario: no node owns the session")
	}
	victim.kill()
	rt.MarkDead(victim.id)

	if _, err := askLatencies(client, base, sid, questions, cfg.Asks-firstHalf); err != nil {
		log.Fatalf("fanout scenario: post-failover ask: %v", err)
	}
	if err := deleteFanoutSession(client, base, sid); err != nil {
		log.Fatalf("fanout scenario: %v", err)
	}
	wg.Wait()

	failures := 0
	for i, err := range errs {
		if err != nil {
			log.Printf("FAIL: subscriber %d: %v", i, err)
			failures++
		}
	}
	failures += auditStreams(streams, wantEvents)
	// Every subscriber crossed the failover: the stitched streams above
	// being gap-free proves the promoted node re-seeded the dead owner's
	// exact sequence numbers from its replicated journal.

	fmt.Printf("fisql-loadgen fanout: corpus=%s cluster_nodes=%d subscribers=%d asks=%d events=%d victim=%s failures=%d\n",
		corpus, cfg.Nodes, cfg.Subscribers, cfg.Asks, wantEvents, victim.id, failures)
	if failures > 0 {
		log.Printf("FAIL: %d fanout violations", failures)
		return 1
	}
	return 0
}
