// Command fisql-chat is the interactive Assistant (the CLI equivalent of
// the paper's Figure 4 conversation): ask questions, read the four outputs
// (result, reformulation, explanation, SQL), and refine with feedback.
//
// Usage:
//
//	fisql-chat -corpus aep
//	fisql-chat -corpus spider -db concert_singer
//
// In-chat commands:
//
//	:db <name>         switch database
//	:dbs               list databases
//	:fb <text>         give feedback on the last query
//	:hl <substring>    highlight a segment of the SQL for the next :fb
//	:sql               show the current SQL
//	:quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"fisql"
)

func main() {
	log.SetFlags(0)
	corpus := flag.String("corpus", "aep", "corpus: aep or spider")
	db := flag.String("db", "", "database to start on (default: first)")
	flag.Parse()

	var sys *fisql.System
	var err error
	switch *corpus {
	case "aep":
		sys, err = fisql.NewExperiencePlatformSystem()
	case "spider":
		sys, err = fisql.NewSpiderSystem()
	default:
		log.Fatalf("unknown corpus %q", *corpus)
	}
	if err != nil {
		log.Fatalf("build corpus: %v", err)
	}
	dbs := sys.Databases()
	cur := dbs[0]
	if *db != "" {
		cur = *db
	}

	ctx := context.Background()
	sess := sys.Session(cur, fisql.Options{Routing: true, Highlights: true})
	fmt.Printf("FISQL assistant — corpus %s, database %s\n", *corpus, cur)
	fmt.Println("Ask a question, or :help for commands.")

	var pendingHL *fisql.Highlight
	sc := bufio.NewScanner(os.Stdin)
	for prompt(); sc.Scan(); prompt() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ":quit" || line == ":q":
			return
		case line == ":help":
			fmt.Println(":db <name> | :dbs | :fb <text> | :hl <substring> | :sql | :quit")
		case line == ":dbs":
			for _, d := range dbs {
				fmt.Println(" ", d)
			}
		case line == ":sql":
			fmt.Println(sess.SQL())
		case strings.HasPrefix(line, ":db "):
			cur = strings.TrimSpace(strings.TrimPrefix(line, ":db "))
			sess = sys.Session(cur, fisql.Options{Routing: true, Highlights: true})
			fmt.Printf("switched to %s\n", cur)
		case strings.HasPrefix(line, ":hl "):
			sub := strings.TrimSpace(strings.TrimPrefix(line, ":hl "))
			idx := strings.Index(sess.SQL(), sub)
			if idx < 0 {
				fmt.Println("segment not found in current SQL")
				continue
			}
			pendingHL = &fisql.Highlight{Start: idx, End: idx + len(sub), Text: sub}
			fmt.Printf("highlighted: %q\n", sub)
		case strings.HasPrefix(line, ":fb "):
			text := strings.TrimSpace(strings.TrimPrefix(line, ":fb "))
			ans, err := sess.Feedback(ctx, text, pendingHL)
			pendingHL = nil
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			show(ans)
		default:
			ans, err := sess.Ask(ctx, line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			show(ans)
		}
	}
}

func prompt() { fmt.Print("> ") }

func show(ans *fisql.Answer) {
	fmt.Println(ans.Reformulation)
	fmt.Println("Here is how we got the results:")
	for _, step := range ans.Explanation {
		fmt.Println("  -", step)
	}
	if ans.ExecErr != nil {
		fmt.Println("We found nothing for your query. (", ans.ExecErr, ")")
	} else if ans.Result == nil || len(ans.Result.Rows) == 0 {
		fmt.Println("We found nothing for your query.")
	} else {
		fmt.Println(ans.Result.Format())
	}
	fmt.Println("[Show source] ", ans.SQL)
}
